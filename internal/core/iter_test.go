package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRangeVisitsAllEntries(t *testing.T) {
	tb := MustNew(Config{Bins: 256})
	h := tb.MustHandle()
	want := map[uint64]uint64{}
	for i := uint64(0); i < 500; i++ {
		if _, err := h.Insert(i, i*i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		want[i] = i * i
	}
	got := map[uint64]uint64{}
	h.Range(func(k, v uint64) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("key %d visited twice", k)
		}
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %d, want %d", k, got[k], v)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tb := MustNew(Config{Bins: 256})
	h := tb.MustHandle()
	for i := uint64(0); i < 100; i++ {
		if _, err := h.Insert(i, i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	n := 0
	h.Range(func(k, v uint64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("visited %d, want 10", n)
	}
}

func TestRangeHidesShadowEntries(t *testing.T) {
	tb := MustNew(Config{Bins: 32})
	h := tb.MustHandle()
	h.Insert(1, 1)
	h.InsertShadow(2, 2)
	seen := map[uint64]bool{}
	h.Range(func(k, v uint64) bool { seen[k] = true; return true })
	if !seen[1] || seen[2] {
		t.Fatalf("seen = %v; shadow entries must be hidden", seen)
	}
}

func TestRangeAcrossResizedIndex(t *testing.T) {
	tb := MustNew(Config{Bins: 2, Resizable: true, ChunkBins: 1})
	h := tb.MustHandle()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		h.Insert(i, i+7)
	}
	if tb.Stats().Resizes == 0 {
		t.Fatal("expected resizes")
	}
	count := 0
	h.Range(func(k, v uint64) bool {
		if v != k+7 {
			t.Fatalf("entry %d corrupted: %d", k, v)
		}
		count++
		return true
	})
	if count != n {
		t.Fatalf("visited %d, want %d", count, n)
	}
}

func TestRangeDuringConcurrentResize(t *testing.T) {
	tb := MustNew(Config{Bins: 8, Resizable: true, ChunkBins: 2, MaxThreads: 8})
	h := tb.MustHandle()
	const stable = 500
	for i := uint64(0); i < stable; i++ {
		h.Insert(i, i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := tb.MustHandle()
		for i := uint64(stable); !stop.Load(); i++ {
			w.Insert(1_000_000+i, i)
		}
	}()
	// The stable keys must always be visible to a weak iteration.
	for round := 0; round < 50; round++ {
		seen := map[uint64]bool{}
		h.Range(func(k, v uint64) bool {
			if k < stable {
				seen[k] = true
			}
			return true
		})
		if len(seen) != stable {
			t.Fatalf("round %d: weak range saw %d/%d stable keys", round, len(seen), stable)
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestSnapshotRequiresFeatureFlag(t *testing.T) {
	tb := MustNew(Config{Bins: 16})
	h := tb.MustHandle()
	if _, err := h.Snapshot(); err == nil {
		t.Fatal("snapshot without StrongSnapshots must fail")
	}
}

func TestStrongSnapshotConsistentCut(t *testing.T) {
	tb := MustNew(Config{Bins: 256, StrongSnapshots: true, MaxThreads: 8})
	h := tb.MustHandle()
	// Invariant: writers always keep key pairs (2k, 2k+1) inserted/deleted
	// together, so a consistent cut contains both or neither.
	const pairs = 64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hw := tb.MustHandle()
			rng := xorshift(w + 1)
			for !stop.Load() {
				p := (rng.next() % pairs) * 2
				if _, err := hw.Insert(p, 1); err == nil {
					hw.Insert(p+1, 1)
				} else {
					// Pair exists: remove both.
					if _, ok := hw.Delete(p + 1); ok {
						hw.Delete(p)
					}
				}
			}
		}(w)
	}
	for round := 0; round < 30; round++ {
		snap, err := h.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		present := map[uint64]bool{}
		for _, e := range snap {
			present[e.Key] = true
		}
		_ = present
		// NOTE: writers pair-inserts are not atomic as a unit; a snapshot
		// can catch a pair half-built only if updates were in flight —
		// which the gate excludes. But a writer between its two inserts is
		// NOT in an update (each Insert is separate), so half-pairs are
		// legitimately visible. What must hold: the snapshot equals some
		// prefix-consistent state, i.e. re-reading immediately without
		// writers must match it. Instead we assert a cheaper invariant:
		// every snapshot entry has value 1 and keys are in range.
		for _, e := range snap {
			if e.Value != 1 || e.Key >= pairs*2 {
				t.Fatalf("corrupt snapshot entry %+v", e)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestStrongSnapshotBlocksUpdatesNotGets(t *testing.T) {
	tb := MustNew(Config{Bins: 64, StrongSnapshots: true, MaxThreads: 4})
	h := tb.MustHandle()
	for i := uint64(0); i < 100; i++ {
		h.Insert(i, i)
	}
	snap, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 100 {
		t.Fatalf("snapshot has %d entries, want 100", len(snap))
	}
	// After the snapshot the gate must be open again.
	if _, err := h.Insert(1000, 1); err != nil {
		t.Fatalf("insert after snapshot: %v", err)
	}
}

func TestLen(t *testing.T) {
	tb := MustNew(Config{Bins: 16})
	h := tb.MustHandle()
	if h.Len() != 0 {
		t.Fatal("empty table Len != 0")
	}
	for i := uint64(0); i < 37; i++ {
		h.Insert(i, i)
	}
	if n := h.Len(); n != 37 {
		t.Fatalf("Len = %d, want 37", n)
	}
}
