package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/alloc"
)

func newKV(t *testing.T, cfg Config) (*Table, *Handle) {
	t.Helper()
	cfg.Mode = Allocator
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb, tb.MustHandle()
}

func TestKVBasicFixedSize(t *testing.T) {
	_, h := newKV(t, Config{Bins: 64, ValueSize: 16})
	key := []byte("k1")
	val := bytes.Repeat([]byte{0xab}, 16)
	if err := h.InsertKV(0, key, val); err != nil {
		t.Fatal(err)
	}
	got, ok := h.GetKV(0, key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("GetKV = (%x,%v)", got, ok)
	}
	if !h.DeleteKV(0, key) {
		t.Fatal("delete failed")
	}
	if _, ok := h.GetKV(0, key); ok {
		t.Fatal("deleted key visible")
	}
}

func TestKVFixedSizeRejectsWrongValueLen(t *testing.T) {
	_, h := newKV(t, Config{Bins: 64, ValueSize: 8})
	if err := h.InsertKV(0, []byte("k"), make([]byte, 9)); !errors.Is(err, ErrValueSize) {
		t.Fatalf("err = %v, want ErrValueSize", err)
	}
}

func TestKVVariableSizes(t *testing.T) {
	// The paper's §3.4.1 example: a 2-byte key with a 5-byte value next to
	// a 128-byte key with a 1024-byte value in the same index.
	_, h := newKV(t, Config{Bins: 64, VariableKV: true})
	small := []byte("ab")
	smallVal := []byte("hello")
	big := bytes.Repeat([]byte("K"), 128)
	bigVal := bytes.Repeat([]byte("V"), 1024)
	if err := h.InsertKV(0, small, smallVal); err != nil {
		t.Fatal(err)
	}
	if err := h.InsertKV(0, big, bigVal); err != nil {
		t.Fatal(err)
	}
	if v, ok := h.GetKV(0, small); !ok || !bytes.Equal(v, smallVal) {
		t.Fatalf("small = (%q,%v)", v, ok)
	}
	if v, ok := h.GetKV(0, big); !ok || !bytes.Equal(v, bigVal) {
		t.Fatalf("big: ok=%v len=%d", ok, len(v))
	}
}

func TestKVBigKeysSharedPrefix(t *testing.T) {
	// Keys longer than 8 bytes share their filter word; the full key in the
	// block must disambiguate.
	_, h := newKV(t, Config{Bins: 1, LinkRatio: 1, VariableKV: true})
	k1 := []byte("prefix-0-AAAA")
	k2 := []byte("prefix-0-BBBB")
	k3 := []byte("prefix-0-AAAA-even-longer")
	for i, k := range [][]byte{k1, k2, k3} {
		if err := h.InsertKV(0, k, []byte{byte(i)}); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	for i, k := range [][]byte{k1, k2, k3} {
		v, ok := h.GetKV(0, k)
		if !ok || v[0] != byte(i) {
			t.Fatalf("GetKV(%q) = (%v,%v), want %d", k, v, ok, i)
		}
	}
	if err := h.InsertKV(0, k1, []byte{9}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate big key err = %v", err)
	}
	if !h.DeleteKV(0, k2) {
		t.Fatal("delete k2")
	}
	if _, ok := h.GetKV(0, k2); ok {
		t.Fatal("k2 visible after delete")
	}
	if _, ok := h.GetKV(0, k1); !ok {
		t.Fatal("k1 lost")
	}
}

func TestKVShortKeysDistinguishedByLength(t *testing.T) {
	// "ab" and "ab\x00" share an inline key word; the 4-bit size code must
	// keep them distinct.
	_, h := newKV(t, Config{Bins: 16, VariableKV: true})
	if err := h.InsertKV(0, []byte("ab"), []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := h.InsertKV(0, []byte("ab\x00"), []byte{2}); err != nil {
		t.Fatalf("length-distinct key rejected: %v", err)
	}
	v1, _ := h.GetKV(0, []byte("ab"))
	v2, _ := h.GetKV(0, []byte("ab\x00"))
	if v1[0] != 1 || v2[0] != 2 {
		t.Fatalf("values = %v, %v", v1, v2)
	}
}

func TestKVNamespaces(t *testing.T) {
	_, h := newKV(t, Config{Bins: 64, VariableKV: true, Namespaces: true})
	key := []byte("conflict")
	for ns := uint16(0); ns < 5; ns++ {
		if err := h.InsertKV(ns, key, []byte{byte(ns)}); err != nil {
			t.Fatalf("ns %d: %v", ns, err)
		}
	}
	for ns := uint16(0); ns < 5; ns++ {
		v, ok := h.GetKV(ns, key)
		if !ok || v[0] != byte(ns) {
			t.Fatalf("ns %d: (%v,%v)", ns, v, ok)
		}
	}
	// Deleting in one namespace leaves the others.
	if !h.DeleteKV(2, key) {
		t.Fatal("delete ns 2")
	}
	if _, ok := h.GetKV(2, key); ok {
		t.Fatal("ns 2 still visible")
	}
	if _, ok := h.GetKV(3, key); !ok {
		t.Fatal("ns 3 collateral damage")
	}
}

func TestKVNamespaceValidation(t *testing.T) {
	_, h := newKV(t, Config{Bins: 16, VariableKV: true}) // namespaces off
	if err := h.InsertKV(7, []byte("k"), []byte("v")); !errors.Is(err, ErrNamespace) {
		t.Fatalf("err = %v, want ErrNamespace", err)
	}
}

func TestKVEmptyKeyRejected(t *testing.T) {
	_, h := newKV(t, Config{Bins: 16, VariableKV: true})
	if err := h.InsertKV(0, nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("err = %v, want ErrEmptyKey", err)
	}
}

func TestKVWrongModePanics(t *testing.T) {
	tb := MustNew(Config{Bins: 16})
	h := tb.MustHandle()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.GetKV(0, []byte("k"))
}

func TestKVUpdateInPlace(t *testing.T) {
	// The pointer API of §3.2.1: Gets return a mutable view.
	_, h := newKV(t, Config{Bins: 64, ValueSize: 8})
	h.InsertKV(0, []byte("ctr"), make([]byte, 8))
	for i := 0; i < 10; i++ {
		ok := h.UpdateKV(0, []byte("ctr"), func(v []byte) { v[0]++ })
		if !ok {
			t.Fatal("update lost key")
		}
	}
	v, _ := h.GetKV(0, []byte("ctr"))
	if v[0] != 10 {
		t.Fatalf("counter = %d, want 10", v[0])
	}
}

func TestKVAllocatorReclaimsOnDelete(t *testing.T) {
	a := alloc.NewArena()
	tb := MustNew(Config{Mode: Allocator, Bins: 64, ValueSize: 32, Alloc: a})
	h := tb.MustHandle()
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%02d", i))
		if err := h.InsertKV(0, key, make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%02d", i))
		if !h.DeleteKV(0, key) {
			t.Fatal("delete")
		}
	}
	s := a.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d (leak without epoch GC)", s.Allocs, s.Frees)
	}
}

func TestKVFailedInsertFreesBlock(t *testing.T) {
	a := alloc.NewArena()
	tb := MustNew(Config{Mode: Allocator, Bins: 64, ValueSize: 8, Alloc: a})
	h := tb.MustHandle()
	h.InsertKV(0, []byte("dup"), make([]byte, 8))
	before := a.Stats()
	if err := h.InsertKV(0, []byte("dup"), make([]byte, 8)); !errors.Is(err, ErrExists) {
		t.Fatal(err)
	}
	after := a.Stats()
	if after.Allocs-before.Allocs != after.Frees-before.Frees {
		t.Fatalf("failed insert leaked a block: %+v -> %+v", before, after)
	}
}

func TestKVEpochGCDefersFrees(t *testing.T) {
	a := alloc.NewArena()
	tb := MustNew(Config{
		Mode: Allocator, Bins: 64, ValueSize: 8, Alloc: a,
		EpochGC: true, MaxThreads: 2,
	})
	h := tb.MustHandle()
	h.InsertKV(0, []byte("k"), make([]byte, 8))
	if !h.DeleteKV(0, []byte("k")) {
		t.Fatal("delete")
	}
	if f := a.Stats().Frees; f != 0 {
		t.Fatalf("block freed immediately despite epoch GC (frees=%d)", f)
	}
	// Advancing the epoch from all threads eventually reclaims.
	freed := 0
	for i := 0; i < 6 && freed == 0; i++ {
		freed += h.AdvanceEpoch()
	}
	if freed == 0 {
		t.Fatal("epoch GC never freed the retired block")
	}
	if tb.Stats().EpochFrees == 0 {
		t.Fatal("EpochFrees counter not updated")
	}
}

func TestKVResizePreservesPairs(t *testing.T) {
	tb := MustNew(Config{
		Mode: Allocator, Bins: 4, VariableKV: true, Resizable: true, ChunkBins: 2,
	})
	h := tb.MustHandle()
	const n = 1500
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		val := bytes.Repeat([]byte{byte(i)}, 1+i%60)
		if err := h.InsertKV(0, key, val); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tb.Stats().Resizes == 0 {
		t.Fatal("expected resizes")
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		v, ok := h.GetKV(0, key)
		if !ok || len(v) != 1+i%60 || (len(v) > 0 && v[0] != byte(i)) {
			t.Fatalf("pair %d corrupted after resize: ok=%v len=%d", i, ok, len(v))
		}
	}
}

func TestKVBigKeyResize(t *testing.T) {
	// Big keys force the migration to re-hash via the block (§3.4.1 path).
	tb := MustNew(Config{
		Mode: Allocator, Bins: 2, VariableKV: true, Resizable: true, ChunkBins: 1,
	})
	h := tb.MustHandle()
	const n = 300
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("a-very-long-key-beyond-8-bytes-%05d", i))
		if err := h.InsertKV(0, key, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("a-very-long-key-beyond-8-bytes-%05d", i))
		v, ok := h.GetKV(0, key)
		if !ok || v[0] != byte(i) {
			t.Fatalf("big key %d lost after resize", i)
		}
	}
}

func TestKVConcurrent(t *testing.T) {
	tb := MustNew(Config{
		Mode: Allocator, Bins: 256, VariableKV: true, Resizable: true,
		ChunkBins: 64, MaxThreads: 16,
	})
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tb.MustHandle()
			for i := 0; i < 3000; i++ {
				key := []byte(fmt.Sprintf("w%d-k%04d", w, i%200))
				switch i % 3 {
				case 0:
					h.InsertKV(0, key, []byte(fmt.Sprintf("v%d", i)))
				case 1:
					h.GetKV(0, key)
				default:
					h.DeleteKV(0, key)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNaiveAllocatorBackend(t *testing.T) {
	tb := MustNew(Config{Mode: Allocator, Bins: 64, ValueSize: 8, Alloc: alloc.NewNaive()})
	h := tb.MustHandle()
	if err := h.InsertKV(0, []byte("k"), []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	v, ok := h.GetKV(0, []byte("k"))
	if !ok || string(v) != "12345678" {
		t.Fatalf("naive backend GetKV = (%q,%v)", v, ok)
	}
}

func TestGetKVBatch(t *testing.T) {
	_, h := newKV(t, Config{Bins: 256, VariableKV: true, Namespaces: true})
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("batch-key-%03d", i))
		if err := h.InsertKV(uint16(i%3), key, bytes.Repeat([]byte{byte(i)}, 1+i%20)); err != nil {
			t.Fatal(err)
		}
	}
	reqs := make([]KVGet, 32)
	for i := range reqs {
		reqs[i] = KVGet{NS: uint16(i % 3), Key: []byte(fmt.Sprintf("batch-key-%03d", i))}
	}
	reqs = append(reqs, KVGet{NS: 0, Key: []byte("missing")})
	h.GetKVBatch(reqs)
	for i := 0; i < 32; i++ {
		if !reqs[i].OK {
			t.Fatalf("req %d not found", i)
		}
		want := bytes.Repeat([]byte{byte(i)}, 1+i%20)
		if !bytes.Equal(reqs[i].Value, want) {
			t.Fatalf("req %d value = %v, want %v", i, reqs[i].Value, want)
		}
	}
	if reqs[32].OK || reqs[32].Value != nil {
		t.Fatal("missing key reported found")
	}
}

func TestGetKVBatchWrongModePanics(t *testing.T) {
	tb := MustNew(Config{Bins: 16})
	h := tb.MustHandle()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.GetKVBatch([]KVGet{{Key: []byte("k")}})
}

func TestGetKVBatchLarge(t *testing.T) {
	// Batches larger than the internal stack buffer must still work.
	_, h := newKV(t, Config{Bins: 1 << 10, ValueSize: 8})
	const n = 200
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("large-%04d", i))
		if err := h.InsertKV(0, key, []byte{byte(i), 0, 0, 0, 0, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	reqs := make([]KVGet, n)
	for i := range reqs {
		reqs[i] = KVGet{Key: []byte(fmt.Sprintf("large-%04d", i))}
	}
	h.GetKVBatch(reqs)
	for i := range reqs {
		if !reqs[i].OK || reqs[i].Value[0] != byte(i) {
			t.Fatalf("req %d = (%v,%v)", i, reqs[i].Value, reqs[i].OK)
		}
	}
}

func TestGetKVBatchDuringResize(t *testing.T) {
	tb := MustNew(Config{
		Mode: Allocator, Bins: 4, VariableKV: true,
		Resizable: true, ChunkBins: 1, MaxThreads: 8,
	})
	h := tb.MustHandle()
	const n = 400
	for i := 0; i < n; i++ {
		h.InsertKV(0, []byte(fmt.Sprintf("rz-%04d", i)), []byte{byte(i)})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := tb.MustHandle()
		for i := n; i < n+3000; i++ {
			w.InsertKV(0, []byte(fmt.Sprintf("rz-%04d", i)), []byte{1})
		}
	}()
	reqs := make([]KVGet, 16)
	for round := 0; round < 100; round++ {
		for i := range reqs {
			idx := (round*16 + i) % n
			reqs[i] = KVGet{Key: []byte(fmt.Sprintf("rz-%04d", idx))}
		}
		h.GetKVBatch(reqs)
		for i := range reqs {
			idx := (round*16 + i) % n
			if !reqs[i].OK || reqs[i].Value[0] != byte(idx) {
				t.Fatalf("round %d req %d lost during resize", round, i)
			}
		}
	}
	wg.Wait()
}
