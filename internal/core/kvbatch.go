package core

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/cpuops"
)

// Allocator-mode batching (§3.3): "Unlike MICA, our pointer-based API also
// allows us to prefetch the externally stored values in Allocator mode."
// GetKVBatch runs in three phases: prefetch every request's bin, locate the
// slots (bins now cached) while prefetching each hit's out-of-line block,
// then materialize the value views (blocks now cached). Request order is
// preserved in the results.

// KVGet is one request of a GetKVBatch.
type KVGet struct {
	NS  uint16
	Key []byte

	// Value is the pointer-API view of the value (nil when not found).
	// The same lifetime rules as GetKV apply.
	Value []byte
	OK    bool
}

// GetKVBatch performs a batch of Allocator-mode lookups with two-level
// software prefetching (index bins, then value blocks).
func (h *Handle) GetKVBatch(reqs []KVGet) {
	t := h.t
	if t.cfg.Mode != Allocator {
		panic(ErrWrongMode)
	}
	ix := h.enter()
	defer h.leave()

	// Phase 1: prefetch every bin.
	for i := range reqs {
		b := t.binForKV(ix, reqs[i].Key, reqs[i].NS)
		cpuops.PrefetchUint64(ix.headerAddr(b))
	}
	// Phase 2: locate slots; prefetch each hit's block before touching it.
	type hit struct {
		val uint64
	}
	// Small stack buffer for the common batch sizes.
	var buf [64]hit
	hits := buf[:0]
	if len(reqs) > len(buf) {
		hits = make([]hit, 0, len(reqs))
	}
	for i := range reqs {
		vw, ok := t.lookupKVSlot(ix, reqs[i].NS, reqs[i].Key)
		reqs[i].OK = ok
		if ok {
			blk := t.cfg.Alloc.Bytes(refOf(vw), 1)
			cpuops.Prefetch(unsafe.Pointer(&blk[0]))
		}
		hits = append(hits, hit{vw})
	}
	// Phase 3: materialize the views; block headers are now cached.
	for i := range reqs {
		if reqs[i].OK {
			reqs[i].Value = t.valueView(hits[i].val)
		} else {
			reqs[i].Value = nil
		}
	}
}

// lookupKVSlot runs the Get algorithm and returns the slot's value word.
func (t *Table) lookupKVSlot(ix *index, ns uint16, key []byte) (uint64, bool) {
	wantKW := inlineKeyWord(key)
	wantCode := keyCodeFor(key)
	for {
		b := t.binForKV(ix, key, ns)
		for {
			hdr := atomic.LoadUint64(ix.headerAddr(b))
			if nx := ix.redirect(b, hdr); nx != nil {
				ix = nx
				break
			}
			slot, vw := t.scanBinKV(ix, b, hdr, wantKW, wantCode, ns, key)
			if slot == scanRetry {
				continue
			}
			if slot == scanMiss {
				return 0, false
			}
			return vw, true
		}
	}
}
