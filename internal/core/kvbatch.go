package core

import (
	"sync/atomic"
)

// Allocator-mode batching (§3.3): GetKVBatch is the batch-at-once adapter
// over the two-stage kvPipe engine in kvpipeline.go — the same machinery
// that backs the streaming KVPipeline. The bin-header prefetch runs a full
// window ahead of completion, the slot lookup (which prefetches the hit's
// out-of-line block) runs half a window ahead, and the value views
// materialize last, once their block headers are cached. Request order is
// preserved in the results.

// KVGet is one request of a GetKVBatch (or a streaming KVPipeline).
type KVGet struct {
	NS  uint16
	Key []byte

	// Value is the pointer-API view of the value (nil when not found).
	// The same lifetime rules as GetKV apply.
	Value []byte
	OK    bool
}

// GetKVBatch performs a batch of Allocator-mode lookups with two-level
// sliding-window software prefetching (index bins, then value blocks).
//
// GetKVBatch is the batch-at-once adapter over the streaming pipeline
// core; for issuing lookups incrementally with per-request completions,
// see Handle.KVPipeline.
func (h *Handle) GetKVBatch(reqs []KVGet) {
	t := h.t
	if t.cfg.Mode != Allocator {
		panic(ErrWrongMode)
	}
	ix := h.enter()
	defer h.leave()

	n := len(reqs)
	w := t.prefetchWindow(n)
	lead := kvLead(w)
	p := h.kvExecPipe(w)
	for i := range reqs {
		p.issue(t, ix, &reqs[i])
		p.advance(t, w, lead)
		if p.head-p.tail > w {
			h.kvStep(p)
		}
	}
	for p.head > p.tail {
		p.advance(t, w, lead)
		h.kvStep(p)
	}
	p.head, p.s2, p.tail = 0, 0, 0
}

// lookupKVSlot runs the Get algorithm and returns the slot's value word.
func (t *Table) lookupKVSlot(ix *index, ns uint16, key []byte) (uint64, bool) {
	return t.lookupKVSlotAt(ix, ns, key, inlineKeyWord(key), keyCodeFor(key), t.binForKV(ix, key, ns))
}

// lookupKVSlotAt is lookupKVSlot with the key word, key code and bin
// precomputed (memoized by the pipeline engine's prefetch stage). A resize
// redirect invalidates the bin, which is recomputed against the successor
// index; the key word and code are index-independent and stay valid.
func (t *Table) lookupKVSlotAt(ix *index, ns uint16, key []byte, wantKW uint64, wantCode int, b uint64) (uint64, bool) {
	for {
		hdr := atomic.LoadUint64(ix.headerAddr(b))
		if nx := ix.redirect(b, hdr); nx != nil {
			ix = nx
			b = t.binForKV(ix, key, ns)
			continue
		}
		slot, vw := t.scanBinKV(ix, b, hdr, wantKW, wantCode, ns, key)
		if slot == scanRetry {
			continue
		}
		if slot == scanMiss {
			return 0, false
		}
		return vw, true
	}
}
