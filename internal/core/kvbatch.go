package core

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/cpuops"
)

// Allocator-mode batching (§3.3): "Unlike MICA, our pointer-based API also
// allows us to prefetch the externally stored values in Allocator mode."
// GetKVBatch runs as one interleaved pipeline with two prefetch stages: the
// bin-header prefetch runs a full window ahead of execution, the slot
// lookup (which prefetches the hit's out-of-line block) runs half a window
// ahead, and the value views materialize last, once their block headers are
// cached. The previous three-barrier formulation prefetched every bin
// before touching any — for huge batches the head of the pass was evicted
// before use. Request order is preserved in the results.

// KVGet is one request of a GetKVBatch.
type KVGet struct {
	NS  uint16
	Key []byte

	// Value is the pointer-API view of the value (nil when not found).
	// The same lifetime rules as GetKV apply.
	Value []byte
	OK    bool
}

// kvPipe is one in-flight request of the GetKVBatch pipeline: the hash
// coordinates memoized by the bin-prefetch stage (kw, code, bin) plus the
// located slot's value word from the lookup stage.
type kvPipe struct {
	bin  uint64
	kw   uint64
	vw   uint64
	code int
	ok   bool
}

// GetKVBatch performs a batch of Allocator-mode lookups with two-level
// sliding-window software prefetching (index bins, then value blocks).
func (h *Handle) GetKVBatch(reqs []KVGet) {
	t := h.t
	if t.cfg.Mode != Allocator {
		panic(ErrWrongMode)
	}
	ix := h.enter()
	defer h.leave()

	n := len(reqs)
	w := t.prefetchWindow(n)
	// The lookup stage trails the bin prefetch by half a window and leads
	// materialization by the other half, splitting the in-flight budget
	// between the two prefetch levels.
	lead := (w + 1) / 2
	ring := h.kvScratch(w)

	// Stage 1: hash the key, memoize its coordinates, prefetch the bin.
	stage1 := func(j int) {
		e := &ring[j%w]
		e.kw = inlineKeyWord(reqs[j].Key)
		e.code = keyCodeFor(reqs[j].Key)
		e.bin = t.binForKV(ix, reqs[j].Key, reqs[j].NS)
		cpuops.PrefetchUint64(ix.headerAddr(e.bin))
	}
	// Stage 2: locate the slot (bin now cached) and prefetch the hit's
	// out-of-line block.
	stage2 := func(j int) {
		e := &ring[j%w]
		e.vw, e.ok = t.lookupKVSlotAt(ix, reqs[j].NS, reqs[j].Key, e.kw, e.code, e.bin)
		if e.ok {
			blk := t.cfg.Alloc.Bytes(refOf(e.vw), 1)
			cpuops.Prefetch(unsafe.Pointer(&blk[0]))
		}
	}

	// Prime both stages (prefetchWindow guarantees lead ≤ w ≤ n).
	for j := 0; j < w; j++ {
		stage1(j)
	}
	for j := 0; j < lead; j++ {
		stage2(j)
	}
	// Steady state: request i's ring entry is copied out first because
	// stage1(i+w) reuses its slot; stage2(i+lead)'s slot is distinct since
	// 0 < lead ≤ w.
	for i := 0; i < n; i++ {
		e := ring[i%w]
		if j := i + w; j < n {
			stage1(j)
		}
		if j := i + lead; j < n {
			stage2(j)
		}
		reqs[i].OK = e.ok
		if e.ok {
			reqs[i].Value = t.valueView(e.vw)
		} else {
			reqs[i].Value = nil
		}
	}
}

// lookupKVSlot runs the Get algorithm and returns the slot's value word.
func (t *Table) lookupKVSlot(ix *index, ns uint16, key []byte) (uint64, bool) {
	return t.lookupKVSlotAt(ix, ns, key, inlineKeyWord(key), keyCodeFor(key), t.binForKV(ix, key, ns))
}

// lookupKVSlotAt is lookupKVSlot with the key word, key code and bin
// precomputed (memoized by the batch pipeline's prefetch stage). A resize
// redirect invalidates the bin, which is recomputed against the successor
// index; the key word and code are index-independent and stay valid.
func (t *Table) lookupKVSlotAt(ix *index, ns uint16, key []byte, wantKW uint64, wantCode int, b uint64) (uint64, bool) {
	for {
		hdr := atomic.LoadUint64(ix.headerAddr(b))
		if nx := ix.redirect(b, hdr); nx != nil {
			ix = nx
			b = t.binForKV(ix, key, ns)
			continue
		}
		slot, vw := t.scanBinKV(ix, b, hdr, wantKW, wantCode, ns, key)
		if slot == scanRetry {
			continue
		}
		if slot == scanMiss {
			return 0, false
		}
		return vw, true
	}
}
