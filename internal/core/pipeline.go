package core

import (
	"repro/internal/cpuops"
)

//dlht:hotpath
// Completion-driven pipelining: the streaming generalization of the §3.3
// batch API. Where Exec takes a fully materialized []Op, a Pipeline accepts
// requests one at a time: each enqueue issues the request's bin prefetch
// immediately, and once a request falls a full window behind the newest
// enqueue it executes and its completion callback fires. A long-lived
// pipeline therefore keeps the prefetch window primed *across* what used to
// be batch boundaries — the next burst's prefetches overlap the previous
// burst's tail instead of starting from a cold window.
//
// The sliding-window machinery lives in the pipe engine below; Exec (and
// the single-thread execST path) are adapters over the same engine, so the
// windowed loop exists exactly once.

// pipeEntry is one in-flight request of the engine: the op pointer plus the
// bin memoized while its prefetch was issued and the index the bin belongs
// to. A resize redirect invalidates the memoized bin at execution time and
// the op recomputes it against the successor index (the *At op variants).
type pipeEntry struct {
	op  *Op
	ix  *index
	bin uint64
}

// pipe is the sliding-window engine shared by Handle.Exec and Pipeline. It
// is a power-of-two ring of in-flight entries addressed by absolute
// head/tail counters; in-flight = head-tail. The ring grows on demand (a
// completion callback may enqueue), so the window bound is enforced by the
// callers' drain policy, not by ring capacity.
type pipe struct {
	ring []pipeEntry
	mask int
	head int // next issue position (absolute)
	tail int // next completion position (absolute)
}

// sizePipe (re)initializes the ring for a window of w in-flight entries.
func (p *pipe) sizePipe(w int) {
	p.head, p.tail = 0, 0
	if len(p.ring) > w {
		return
	}
	c := 8
	for c <= w { // capacity strictly above w: the issue for op i+w precedes op i's execution
		c <<= 1
	}
	p.ring = make([]pipeEntry, c)
	p.mask = c - 1
}

// grow doubles the ring, preserving in-flight entries at their absolute
// positions.
func (p *pipe) grow() {
	old := p.ring
	oldMask := p.mask
	next := make([]pipeEntry, len(old)*2)
	p.mask = len(next) - 1
	for i := p.tail; i < p.head; i++ {
		next[i&p.mask] = old[i&oldMask]
	}
	p.ring = next
}

// issue admits op into the pipeline: memoize its bin against ix and start
// the bin's cache line toward the core. The op executes later, when it
// reaches the tail of the window.
func (p *pipe) issue(t *Table, ix *index, op *Op) {
	if p.head-p.tail == len(p.ring) {
		p.grow()
	}
	b := t.binFor(ix, op.Key)
	p.ring[p.head&p.mask] = pipeEntry{op: op, ix: ix, bin: b}
	p.head++
	cpuops.PrefetchUint64(ix.headerAddr(b))
}

// step executes the oldest in-flight op against its memoized bin and
// returns it. The entry is copied out before execution so a completion
// callback may grow the ring underneath us.
func (h *Handle) step(p *pipe) *Op {
	e := p.ring[p.tail&p.mask]
	p.tail++
	if h.t.cfg.SingleThread {
		h.stExecOneAt(e.ix, e.op, e.bin)
	} else {
		h.execOneAt(e.ix, e.op, e.bin)
	}
	return e.op
}

// execPipe returns the handle's Exec engine state sized for window w.
func (h *Handle) execPipe(w int) *pipe {
	if h.xp == nil {
		h.xp = new(pipe)
	}
	h.xp.sizePipe(w)
	return h.xp
}

// ---------------------------------------------------------------------------
// Public streaming surface
// ---------------------------------------------------------------------------

// PipelineOpts configures a Pipeline.
type PipelineOpts struct {
	// Window bounds how many requests are in flight between enqueue and
	// completion — the streaming equivalent of Config.PrefetchWindow. 0
	// selects the table's resolved prefetch window (Config.PrefetchWindow,
	// default 16); other values are clamped to at least 1.
	Window int
	// OnComplete is invoked for every request, in enqueue order, as it
	// completes. The *Op is valid only for the duration of the call; copy
	// what you need. OnComplete may enqueue further requests into the same
	// pipeline (the drain loop picks them up); calling Flush or Close from
	// inside it is a no-op.
	OnComplete func(*Op)
}

// Pipeline is the completion-driven streaming form of the batch API (§3.3).
// Requests enter one at a time through Get/Put/Insert/InsertShadow/Delete/
// CommitShadow (or a pre-built Op via Enqueue); each enqueue issues the
// request's bin prefetch immediately, and the request executes — firing
// OnComplete — once a full window of newer requests has been enqueued
// behind it. Flush completes everything still in flight; a long-lived
// pipeline that is *not* flushed between bursts keeps the window primed
// across burst boundaries, which is the point of the API.
//
// Completions preserve enqueue order — the property that makes the batch
// API safe for lock managers and network protocols carries over unchanged.
//
// A Pipeline borrows its Handle and inherits its threading contract: one
// goroutine only, and no other use of the Handle while requests are in
// flight (between an enqueue and the Flush/Close that completes it).
type Pipeline struct {
	h          *Handle
	p          pipe
	buf        []Op // value slots backing in-flight ops, ring-aligned
	w          int
	onComplete func(*Op)
	draining   bool
	closed     bool
	// announce and st cache immutable table config so the per-request path
	// re-derives nothing: whether completions must run under an announced
	// index (resizable concurrent tables) and whether the single-thread op
	// bodies apply.
	announce bool
	st       bool
}

// Pipeline creates a streaming pipeline over h. See PipelineOpts.
func (h *Handle) Pipeline(opts PipelineOpts) *Pipeline {
	w := opts.Window
	if w == 0 {
		// Inherit the table's window. The full-batch setting (negative
		// PrefetchWindow) has no streaming analogue — a pipeline's window is
		// its completion latency — so it resolves to the default.
		if w = h.t.cfg.PrefetchWindow; w <= 0 {
			w = defaultPrefetchWindow
		}
	}
	if w < 1 {
		w = 1
	}
	pl := &Pipeline{
		h: h, w: w, onComplete: opts.OnComplete,
		announce: h.t.cfg.Resizable && !h.t.cfg.SingleThread,
		st:       h.t.cfg.SingleThread,
	}
	pl.p.sizePipe(w)
	pl.buf = make([]Op, len(pl.p.ring))
	return pl
}

// Window returns the pipeline's resolved completion window.
func (pl *Pipeline) Window() int { return pl.w }

// InFlight returns the number of enqueued requests not yet completed.
func (pl *Pipeline) InFlight() int { return pl.p.head - pl.p.tail }

// Enqueue admits a pre-built Op (Kind, Key, Value; result fields are
// ignored) into the pipeline.
func (pl *Pipeline) Enqueue(op Op) { pl.enq(op.Kind, op.Key, op.Value) }

// EnqueueHashed is Enqueue with the key's hash — as returned by
// Table.HashOf — precomputed by the caller. Routers that already hashed
// the key to pick an executor shard hand the hash through so the bin
// mapping does not hash a second time (the same hash-once discipline the
// engine ring applies between prefetch and execution).
func (pl *Pipeline) EnqueueHashed(op Op, hash uint64) {
	pl.enqHashed(op.Kind, op.Key, op.Value, hash)
}

// enq is the shared enqueue hot path: scalar arguments stay in registers
// and the issue stage is written out inline, so a streamed request costs
// what one iteration of Exec's loop costs.
func (pl *Pipeline) enq(kind OpKind, key, val uint64) {
	pl.enqHashed(kind, key, val, pl.h.t.hash64(key))
}

func (pl *Pipeline) enqHashed(kind OpKind, key, val, hash uint64) {
	if pl.closed {
		panic("dlht: Pipeline used after Close")
	}
	p := &pl.p
	if p.head-p.tail == len(p.ring) {
		pl.growBuf()
	}
	slot := &pl.buf[p.head&p.mask]
	slot.Kind, slot.Key, slot.Value = kind, key, val
	slot.Result, slot.OK, slot.Err = 0, false, nil
	t := pl.h.t
	ix := t.current.Load()
	b := hash % ix.numBins
	p.ring[p.head&p.mask] = pipeEntry{op: slot, ix: ix, bin: b}
	p.head++
	cpuops.PrefetchUint64(ix.headerAddr(b))
	if p.head-p.tail > pl.w && !pl.draining {
		pl.drainTo(pl.w)
	}
}

// growBuf doubles the engine ring together with its value slots. In-flight
// entries keep pointing into the old slot array (which stays alive through
// those pointers); only new enqueues land in the new one.
func (pl *Pipeline) growBuf() {
	pl.p.grow()
	pl.buf = make([]Op, len(pl.p.ring))
}

// drainTo completes in-flight requests, oldest first, until at most limit
// remain. Completion callbacks may enqueue; the loop re-checks the bound so
// re-entrant traffic drains too. The announce slot is held for the drain
// run, never between public calls, so an idle pipeline cannot stall the
// resizer's index GC.
func (pl *Pipeline) drainTo(limit int) {
	if pl.draining || pl.p.head-pl.p.tail <= limit {
		return
	}
	h := pl.h
	t := h.t
	p := &pl.p
	pl.draining = true
	if pl.announce {
		h.enter()
	}
	for p.head-p.tail > limit {
		e := p.ring[p.tail&p.mask]
		p.tail++
		if e.op.Kind == OpGet {
			if pl.st {
				h.stExecOneAt(e.ix, e.op, e.bin)
			} else {
				h.execOneAt(e.ix, e.op, e.bin)
			}
		} else {
			t.beginUpdate()
			if pl.st {
				h.stExecOneAt(e.ix, e.op, e.bin)
			} else {
				h.execOneAt(e.ix, e.op, e.bin)
			}
			t.endUpdate()
		}
		if pl.onComplete != nil {
			pl.onComplete(e.op)
		}
	}
	if pl.announce {
		h.leave()
	}
	pl.draining = false
}

// Get enqueues a read of key.
func (pl *Pipeline) Get(key uint64) { pl.enq(OpGet, key, 0) }

// Put enqueues an overwrite of an existing key (Inlined mode only).
func (pl *Pipeline) Put(key, val uint64) { pl.enq(OpPut, key, val) }

// Insert enqueues an insert of a new key.
func (pl *Pipeline) Insert(key, val uint64) { pl.enq(OpInsert, key, val) }

// InsertShadow enqueues a transactional shadow insert (§3.2.2).
func (pl *Pipeline) InsertShadow(key, val uint64) { pl.enq(OpInsertShadow, key, val) }

// Delete enqueues a delete.
func (pl *Pipeline) Delete(key uint64) { pl.enq(OpDelete, key, 0) }

// CommitShadow enqueues the publish (commit=true) or abort (commit=false)
// of a shadow insert.
func (pl *Pipeline) CommitShadow(key uint64, commit bool) {
	v := uint64(0)
	if commit {
		v = 1
	}
	pl.enq(OpCommitShadow, key, v)
}

// Flush completes every in-flight request, firing OnComplete for each.
// Flushing gives up the primed window; call it when a response deadline
// demands the tail, not between back-to-back bursts.
func (pl *Pipeline) Flush() { pl.drainTo(0) }

// Close flushes the pipeline and rejects further enqueues. The Handle
// remains usable. Calling Close from inside OnComplete is a no-op, like
// Flush: the pipeline stays open and keeps completing.
func (pl *Pipeline) Close() {
	if pl.closed || pl.draining {
		return
	}
	pl.Flush()
	pl.closed = true
}
