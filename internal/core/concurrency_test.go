package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// xorshift is the test-local RNG (deterministic, no locking).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// Exactly one of N concurrent Inserts of the same key may succeed.
func TestConcurrentInsertUniqueWinner(t *testing.T) {
	tb := MustNew(Config{Bins: 64, Resizable: true, ChunkBins: 16, MaxThreads: 16})
	const rounds = 500
	const workers = 8
	for r := uint64(0); r < rounds; r++ {
		var wins atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(val uint64) {
				defer wg.Done()
				h := tb.MustHandle()
				if _, err := h.Insert(r, val); err == nil {
					wins.Add(1)
				}
			}(uint64(w))
		}
		wg.Wait()
		if wins.Load() != 1 {
			t.Fatalf("round %d: %d successful inserts of the same key", r, wins.Load())
		}
		// Handles are bounded; reclaim them by resetting the counter (test
		// shortcut: handles are stateless between ops here).
		tb.nHandles.Store(0)
	}
}

// The paper's InsDel workload: each thread owns a key and loops
// Insert→Delete. At any moment at most one live entry per thread exists,
// and ops must never fail.
func TestInsDelLoop(t *testing.T) {
	tb := MustNew(Config{Bins: 1 << 10, MaxThreads: 16})
	const workers = 8
	const iters = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			h := tb.MustHandle()
			for i := 0; i < iters; i++ {
				if _, err := h.Insert(k, k); err != nil {
					t.Errorf("insert %d iter %d: %v", k, i, err)
					return
				}
				if _, ok := h.Delete(k); !ok {
					t.Errorf("delete %d iter %d failed", k, i)
					return
				}
			}
		}(uint64(w) * 1000003)
	}
	wg.Wait()
	h := tb.MustHandle()
	if n := h.Len(); n != 0 {
		t.Fatalf("%d entries left after balanced InsDel", n)
	}
}

// Heavy contention inside a single bin: 8 workers cycling 12 keys that all
// hash to one bin, with concurrent readers verifying values are never torn.
func TestSingleBinContention(t *testing.T) {
	tb := MustNew(Config{Bins: 1, LinkRatio: 1, MaxThreads: 16})
	const workers = 4
	const keys = 12 // leave 3 slots of slack to avoid permanent ErrFull
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tb.MustHandle()
			mine := uint64(w) * 3 // keys 3w..3w+2
			for !stop.Load() {
				for k := mine; k < mine+3 && k < keys; k++ {
					h.Insert(k, k<<32|k)
					if v, ok := h.Get(k); ok && v != k<<32|k {
						t.Errorf("torn value for %d: %#x", k, v)
						return
					}
					h.Delete(k)
				}
			}
		}(w)
	}
	// Readers scanning all keys.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tb.MustHandle()
			for !stop.Load() {
				for k := uint64(0); k < keys; k++ {
					if v, ok := h.Get(k); ok && v != k<<32|k {
						t.Errorf("reader saw torn value for %d: %#x", k, v)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 200000; i++ {
		if t.Failed() {
			break
		}
		if i%10000 == 0 {
			// Let the workers make progress in CI-constrained environments.
		}
	}
	stop.Store(true)
	wg.Wait()
}

// Put atomicity: concurrent Puts to one key must leave one of the written
// values, and concurrent Gets must only ever see written values.
func TestConcurrentPutsAtomic(t *testing.T) {
	tb := MustNew(Config{Bins: 16, MaxThreads: 16})
	h0 := tb.MustHandle()
	h0.Insert(1, 0xAAAA0000AAAA0000)
	valid := map[uint64]bool{0xAAAA0000AAAA0000: true}
	vals := []uint64{0xBBBB0000BBBB0000, 0xCCCC0000CCCC0000, 0xDDDD0000DDDD0000}
	for _, v := range vals {
		valid[v] = true
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(v uint64) {
			defer wg.Done()
			h := tb.MustHandle()
			for !stop.Load() {
				if _, ok := h.Put(1, v); !ok {
					t.Error("Put lost the key")
					return
				}
			}
		}(vals[w])
	}
	reader := tb.MustHandle()
	for i := 0; i < 100000; i++ {
		v, ok := reader.Get(1)
		if !ok {
			t.Fatal("key vanished")
		}
		if !valid[v] {
			t.Fatalf("Get saw unwritten value %#x", v)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// Mixed random workload with per-worker disjoint key spaces; each worker
// checks its own view against a local model, concurrently with others.
func TestMixedWorkloadPerWorkerModel(t *testing.T) {
	tb := MustNew(Config{Bins: 1 << 8, Resizable: true, ChunkBins: 64, MaxThreads: 16})
	const workers = 6
	const opsEach = 30000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tb.MustHandle()
			rng := xorshift(w*7919 + 1)
			model := make(map[uint64]uint64)
			base := uint64(w) << 32
			for i := 0; i < opsEach; i++ {
				k := base | (rng.next() % 128)
				switch rng.next() % 4 {
				case 0: // insert
					v := rng.next()
					_, err := h.Insert(k, v)
					_, exists := model[k]
					if (err == nil) == exists {
						t.Errorf("insert(%#x) err=%v but model exists=%v", k, err, exists)
						return
					}
					if err == nil {
						model[k] = v
					}
				case 1: // delete
					v, ok := h.Delete(k)
					mv, exists := model[k]
					if ok != exists || (ok && v != mv) {
						t.Errorf("delete(%#x) = (%d,%v), model (%d,%v)", k, v, ok, mv, exists)
						return
					}
					delete(model, k)
				case 2: // put
					nv := rng.next()
					old, ok := h.Put(k, nv)
					mv, exists := model[k]
					if ok != exists || (ok && old != mv) {
						t.Errorf("put(%#x) = (%d,%v), model (%d,%v)", k, old, ok, mv, exists)
						return
					}
					if ok {
						model[k] = nv
					}
				default: // get
					v, ok := h.Get(k)
					mv, exists := model[k]
					if ok != exists || (ok && v != mv) {
						t.Errorf("get(%#x) = (%d,%v), model (%d,%v)", k, v, ok, mv, exists)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// Concurrent shadow lock contention: workers race to lock the same keys;
// for each key exactly one holds the lock at a time.
func TestShadowLockMutualExclusion(t *testing.T) {
	tb := MustNew(Config{Mode: HashSet, Bins: 64, MaxThreads: 16})
	const workers = 6
	const keys = 8
	const rounds = 5000
	holders := make([]atomic.Int32, keys)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tb.MustHandle()
			rng := xorshift(w + 1)
			for i := 0; i < rounds; i++ {
				k := rng.next() % keys
				if _, err := h.InsertShadow(k, 0); err != nil {
					continue // lock held elsewhere
				}
				if holders[k].Add(1) != 1 {
					t.Errorf("two holders of lock %d", k)
				}
				holders[k].Add(-1)
				if !h.CommitShadow(k, false) {
					t.Errorf("failed to release lock %d", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	h := tb.MustHandle()
	if n := h.Len(); n != 0 {
		t.Fatalf("%d locks leaked", n)
	}
}
