package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/alloc"
)

// Migrating an Allocator-mode table must move block references, never clone
// or drop blocks: after inserting and deleting everything across several
// resizes, the arena must balance.
func TestKVNoBlockLeakAcrossResize(t *testing.T) {
	a := alloc.NewArena()
	tb := MustNew(Config{
		Mode: Allocator, Bins: 4, ValueSize: 24, Alloc: a,
		Resizable: true, ChunkBins: 2,
	})
	h := tb.MustHandle()
	const n = 2000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		if err := h.InsertKV(0, key, make([]byte, 24)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tb.Stats().Resizes == 0 {
		t.Fatal("no resizes exercised")
	}
	st := a.Stats()
	if st.Allocs != uint64(n) {
		t.Fatalf("allocs = %d, want %d (migration must not clone blocks)", st.Allocs, n)
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		if !h.DeleteKV(0, key) {
			t.Fatalf("delete %d failed", i)
		}
	}
	st = a.Stats()
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d: blocks leaked across migration", st.Allocs, st.Frees)
	}
	if st.HeapUsed != 0 {
		t.Fatalf("HeapUsed = %d after deleting everything", st.HeapUsed)
	}
}

// Transfer keys are internal markers; they must never surface through Get,
// Range or Snapshot, even during heavy concurrent migration.
func TestTransferKeysNeverVisible(t *testing.T) {
	tb := MustNew(Config{Bins: 8, Resizable: true, ChunkBins: 2, MaxThreads: 8})
	var wg sync.WaitGroup
	var bad atomic.Int64
	// The writer inserts enough keys to force several migrations while the
	// scanners run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tb.MustHandle()
		for i := uint64(0); i < 20000; i++ {
			h.Insert(i, i)
		}
	}()
	// Scanners assert no reserved key ever appears.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tb.MustHandle()
			for j := 0; j < 50; j++ {
				h.Range(func(k, v uint64) bool {
					if isReserved(k) {
						bad.Add(1)
						return false
					}
					return true
				})
			}
		}()
	}
	wg.Wait()
	if tb.Stats().Resizes == 0 {
		t.Fatal("no migration overlapped the scans")
	}
	if bad.Load() != 0 {
		t.Fatalf("transfer key leaked into iteration %d times", bad.Load())
	}
}

// CommitShadow must find its entry even when the shadow slot has been
// migrated by a concurrent resize between InsertShadow and CommitShadow.
func TestCommitShadowSurvivesConcurrentResize(t *testing.T) {
	tb := MustNew(Config{Bins: 8, Resizable: true, ChunkBins: 1, MaxThreads: 8})
	const locks = 64
	owner := tb.MustHandle()
	for k := uint64(0); k < locks; k++ {
		if _, err := owner.InsertShadow(1_000_000+k, k); err != nil {
			t.Fatalf("shadow insert %d: %v", k, err)
		}
	}
	// Drive several resizes underneath the held shadow entries.
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			h := tb.MustHandle()
			for i := uint64(0); i < 4000; i++ {
				h.Insert(base+i, i)
			}
		}(uint64(w) << 32)
	}
	wg.Wait()
	if tb.Stats().Resizes == 0 {
		t.Fatal("no resizes exercised")
	}
	// Every shadow entry must still be committable, half commit half abort.
	for k := uint64(0); k < locks; k++ {
		if !owner.CommitShadow(1_000_000+k, k%2 == 0) {
			t.Fatalf("shadow entry %d lost across migrations", k)
		}
	}
	for k := uint64(0); k < locks; k++ {
		_, ok := owner.Get(1_000_000 + k)
		if want := k%2 == 0; ok != want {
			t.Fatalf("lock %d: visible=%v want %v", k, ok, want)
		}
	}
}

// The GC protocol's Stats counters must reconcile: every key moved by a
// migration is accounted, and retired indexes stop being referenced.
func TestResizeAccounting(t *testing.T) {
	tb := MustNew(Config{Bins: 4, Resizable: true, ChunkBins: 2})
	h := tb.MustHandle()
	const n = 1000
	for i := uint64(0); i < n; i++ {
		h.Insert(i, i)
	}
	st := tb.Stats()
	if st.Resizes == 0 || st.ChunksMoved == 0 {
		t.Fatalf("counters: %+v", st)
	}
	// KeysMoved counts every migrated slot across all generations; with g
	// generations each key moves at most g times and at least the final
	// population moved once from the penultimate index.
	if st.KeysMoved == 0 {
		t.Fatal("KeysMoved = 0 despite resizes")
	}
	if st.Occupied != n {
		t.Fatalf("Occupied = %d, want %d", st.Occupied, n)
	}
}

// Handles entering a retired index's table must never observe stale data:
// after a resize completes, a fresh handle sees the full population.
func TestFreshHandleAfterResize(t *testing.T) {
	tb := MustNew(Config{Bins: 4, Resizable: true, ChunkBins: 2, MaxThreads: 32})
	h := tb.MustHandle()
	for i := uint64(0); i < 500; i++ {
		h.Insert(i, i*2)
	}
	h2 := tb.MustHandle()
	for i := uint64(0); i < 500; i++ {
		if v, ok := h2.Get(i); !ok || v != i*2 {
			t.Fatalf("fresh handle Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}

// Zero-value Config must be usable through the facade contract.
func TestZeroConfig(t *testing.T) {
	tb := MustNew(Config{})
	h := tb.MustHandle()
	if _, err := h.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if v, ok := h.Get(1); !ok || v != 2 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
}

func TestDumpBinAndStats(t *testing.T) {
	tb := MustNew(Config{Bins: 4})
	h := tb.MustHandle()
	h.Insert(0, 100)
	h.InsertShadow(4, 200) // same bin under modulo with 4 bins
	s := tb.DumpBin(0)
	for _, want := range []string{"bin 0", "NoTransfer", "Valid", "Shadow", "0x64"} {
		if !strings.Contains(s, want) {
			t.Fatalf("DumpBin missing %q:\n%s", want, s)
		}
	}
	if out := tb.DumpBin(99); !strings.Contains(out, "out of range") {
		t.Fatalf("out-of-range dump: %q", out)
	}
	st := tb.DumpStats()
	if !strings.Contains(st, "bins=4") || !strings.Contains(st, "occupied=2") {
		t.Fatalf("DumpStats: %q", st)
	}
}
