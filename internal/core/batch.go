package core

import (
	"sync/atomic"

	"repro/internal/cpuops"
)

// Batching (§3.3): the client hands DLHT an array of requests; DLHT first
// issues one software prefetch per request's bin, overlapping all their
// memory latencies, then executes the requests strictly in order. Order
// preservation is the differentiator against DRAMHiT's reordering batches —
// it is what makes the batch API safe for lock managers and transactional
// protocols (§5.3.3). The per-request index-GC notifications (enter/leave)
// are paid once per batch instead of once per request.

// OpKind identifies a batched request type.
type OpKind uint8

const (
	// OpGet reads a key.
	OpGet OpKind = iota
	// OpPut overwrites an existing key's value (Inlined mode only).
	OpPut
	// OpInsert adds a new key.
	OpInsert
	// OpInsertShadow adds a hidden (transaction-locked) key.
	OpInsertShadow
	// OpDelete removes a key.
	OpDelete
	// OpCommitShadow publishes a shadow insert (Value!=0 commits, 0 aborts).
	OpCommitShadow
)

// Op is one request in a batch. Kind, Key and Value are inputs; Result, OK
// and Err are outputs.
type Op struct {
	Kind  OpKind
	Key   uint64
	Value uint64

	// Result carries the read value (Get), previous value (Put/Delete) or
	// existing value (failed Insert).
	Result uint64
	// OK reports per-kind success: key found (Get/Put/Delete) or key newly
	// inserted (Insert).
	OK bool
	// Err carries Insert errors (ErrExists, ErrShadow, ErrFull, ...).
	Err error
}

// Exec runs the batch in order and returns the number of operations
// executed. When stopOnFail is true, execution terminates at the first
// operation whose OK is false — e.g. a lock manager aborting a lock
// acquisition sequence (§3.3); subsequent ops are left untouched.
func (h *Handle) Exec(ops []Op, stopOnFail bool) int {
	t := h.t
	if t.cfg.SingleThread {
		return h.execST(ops, stopOnFail)
	}
	mutates := false
	for i := range ops {
		if ops[i].Kind != OpGet {
			mutates = true
			break
		}
	}
	if mutates {
		t.beginUpdate()
	}
	ix := h.enter()
	// Phase 1: overlap the memory latencies of the whole batch.
	for i := range ops {
		b := t.binFor(ix, ops[i].Key)
		cpuops.PrefetchUint64(ix.headerAddr(b))
	}
	// Phase 2: execute in order.
	done := 0
	for i := range ops {
		h.execOne(ix, &ops[i])
		done++
		if stopOnFail && !ops[i].OK {
			break
		}
	}
	h.leave()
	if mutates {
		t.endUpdate()
	}
	return done
}

func (h *Handle) execOne(ix *index, op *Op) {
	t := h.t
	op.Err = nil
	switch op.Kind {
	case OpGet:
		op.Result, op.OK = t.getIn(ix, op.Key)
	case OpPut:
		if t.cfg.Mode != Inlined {
			op.OK, op.Err = false, ErrWrongMode
			return
		}
		op.Result, op.OK = t.putIn(ix, op.Key, op.Value)
	case OpInsert, OpInsertShadow:
		if isReserved(op.Key) {
			op.OK, op.Err = false, ErrReservedKey
			return
		}
		final := slotValid
		if op.Kind == OpInsertShadow {
			final = slotShadow
		}
		op.Result, op.Err = t.insertIn(h, ix, op.Key, op.Value, final)
		op.OK = op.Err == nil
	case OpDelete:
		op.Result, op.OK = t.deleteIn(h, ix, op.Key)
	case OpCommitShadow:
		// Uses the full public path: commit/abort is not on hot paths.
		op.OK = h.commitShadowIn(ix, op.Key, op.Value != 0)
	}
}

// commitShadowIn is CommitShadow against a specific entered index.
func (h *Handle) commitShadowIn(ix *index, key uint64, commit bool) bool {
	t := h.t
	for {
		b := t.binFor(ix, key)
		for {
			hdrAddr := ix.headerAddr(b)
			hdr := atomic.LoadUint64(hdrAddr)
			if nx := ix.redirect(b, hdr); nx != nil {
				ix = nx
				break
			}
			slot, _, st := ix.scanBin(b, hdr, key, -1, true)
			if slot == scanRetry {
				continue
			}
			if slot == scanMiss || st != slotShadow {
				return false
			}
			target := slotValid
			if !commit {
				target = slotInvalid
			}
			if atomic.CompareAndSwapUint64(hdrAddr, hdr, bumpVersion(withSlotState(hdr, slot, target))) {
				return true
			}
		}
	}
}

func (h *Handle) execST(ops []Op, stopOnFail bool) int {
	// Single-thread mode strips synchronization, not memory-awareness: the
	// prefetch pass still overlaps the batch's DRAM latency (§3.4.5 only
	// removes CASes, resize checks and enter/leave notifications).
	ix := h.t.current.Load()
	for i := range ops {
		b := h.t.binFor(ix, ops[i].Key)
		cpuops.PrefetchUint64(ix.headerAddr(b))
	}
	done := 0
	for i := range ops {
		op := &ops[i]
		op.Err = nil
		switch op.Kind {
		case OpGet:
			op.Result, op.OK = h.stGet(op.Key)
		case OpPut:
			op.Result, op.OK = h.stPut(op.Key, op.Value)
		case OpInsert:
			op.Result, op.Err = h.stInsert(op.Key, op.Value, slotValid)
			op.OK = op.Err == nil
		case OpInsertShadow:
			op.Result, op.Err = h.stInsert(op.Key, op.Value, slotShadow)
			op.OK = op.Err == nil
		case OpDelete:
			op.Result, op.OK = h.stDelete(op.Key)
		case OpCommitShadow:
			op.OK = h.stCommitShadow(op.Key, op.Value != 0)
		}
		done++
		if stopOnFail && !op.OK {
			break
		}
	}
	return done
}

// PrefetchKey issues a software prefetch for the bin of key, the
// coroutine-style interface of §3.3: call it, yield to other work, then
// issue the request once the cache line has arrived.
func (h *Handle) PrefetchKey(key uint64) {
	ix := h.t.current.Load()
	b := h.t.binFor(ix, key)
	cpuops.PrefetchUint64(ix.headerAddr(b))
}
