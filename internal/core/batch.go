package core

import (
	"sync/atomic"

	"repro/internal/cpuops"
)

// Batching (§3.3): the client hands DLHT an array of requests; DLHT issues
// one software prefetch per request's bin, overlapping their memory
// latencies, then executes the requests strictly in order. Order
// preservation is the differentiator against DRAMHiT's reordering batches —
// it is what makes the batch API safe for lock managers and transactional
// protocols (§5.3.3). The per-request index-GC notifications (enter/leave)
// are paid once per batch instead of once per request.
//
// Exec is an adapter over the sliding-window pipe engine in pipeline.go —
// the same machinery that backs the streaming Pipeline API. It feeds the
// slice through the engine with at most Config.PrefetchWindow bins in
// flight ahead of execution, so the lines fetched for request i are still
// cache-resident when request i executes. While a bin is prefetched its
// index is memoized in the engine ring, so execution never recomputes the
// hash; a resize redirect invalidates the memoized bin and the op
// recomputes it against the successor index.

// OpKind identifies a batched request type.
type OpKind uint8

const (
	// OpGet reads a key.
	OpGet OpKind = iota
	// OpPut overwrites an existing key's value (Inlined mode only).
	OpPut
	// OpInsert adds a new key.
	OpInsert
	// OpInsertShadow adds a hidden (transaction-locked) key.
	OpInsertShadow
	// OpDelete removes a key.
	OpDelete
	// OpCommitShadow publishes a shadow insert (Value!=0 commits, 0 aborts).
	OpCommitShadow
)

// Op is one request in a batch. Kind, Key and Value are inputs; Result, OK
// and Err are outputs. Field order is size-sorted (words, interface,
// bytes): an Op is 48 bytes instead of 56, and Ops ride every ring in
// the system — pipeline windows, executor rings, reorder slots.
type Op struct {
	Key   uint64
	Value uint64

	// Result carries the read value (Get), previous value (Put/Delete) or
	// existing value (failed Insert).
	Result uint64
	// Err carries Insert errors (ErrExists, ErrShadow, ErrFull, ...).
	Err error

	Kind OpKind
	// OK reports per-kind success: key found (Get/Put/Delete) or key newly
	// inserted (Insert).
	OK bool
}

// Exec runs the batch in order and returns the number of operations
// executed. When stopOnFail is true, execution terminates at the first
// operation whose OK is false — e.g. a lock manager aborting a lock
// acquisition sequence (§3.3); subsequent ops are left untouched.
//
// Exec is the batch-at-once adapter over the streaming pipeline core; for
// issuing requests incrementally with per-request completions, see
// Handle.Pipeline.
func (h *Handle) Exec(ops []Op, stopOnFail bool) int {
	t := h.t
	n := len(ops)
	if n == 0 {
		return 0
	}
	st := t.cfg.SingleThread
	mutates := false
	if !st {
		for i := range ops {
			if ops[i].Kind != OpGet {
				mutates = true
				break
			}
		}
		if mutates {
			t.beginUpdate()
		}
	}
	w := t.prefetchWindow(n)
	p := h.execPipe(w)
	var ix *index
	if st {
		ix = t.current.Load()
	} else {
		ix = h.enter()
	}
	done := 0
	for i := 0; i < n; i++ {
		p.issue(t, ix, &ops[i])
		if p.head-p.tail > w {
			done++
			if op := h.step(p); stopOnFail && !op.OK {
				goto out
			}
		}
	}
	for p.head > p.tail {
		done++
		if op := h.step(p); stopOnFail && !op.OK {
			break
		}
	}
out:
	p.head, p.tail = 0, 0 // abandon any unexecuted in-flight entries
	if !st {
		h.leave()
		if mutates {
			t.endUpdate()
		}
	}
	return done
}

// execOneAt executes one batched op whose bin within ix was memoized by the
// prefetch stage. The *At op variants fall back to recomputing the bin when
// a resize has redirected it.
func (h *Handle) execOneAt(ix *index, op *Op, b uint64) {
	t := h.t
	op.Err = nil
	// All inlined ops are rejected on Allocator-mode tables (the KV surface
	// is that mode's API): slot words there encode block references, so an
	// inlined write would plant a bogus reference for a later delete to
	// free, and an inlined read would leak the encoded reference word.
	if t.cfg.Mode == Allocator {
		op.OK, op.Err = false, ErrWrongMode
		return
	}
	switch op.Kind {
	case OpGet:
		op.Result, op.OK = t.getInAt(ix, op.Key, b)
	case OpPut:
		if t.cfg.Mode != Inlined {
			op.OK, op.Err = false, ErrWrongMode
			return
		}
		op.Result, op.OK = t.putInAt(ix, op.Key, op.Value, b)
	case OpInsert, OpInsertShadow:
		if isReserved(op.Key) {
			op.OK, op.Err = false, ErrReservedKey
			return
		}
		final := slotValid
		if op.Kind == OpInsertShadow {
			final = slotShadow
		}
		op.Result, op.Err = t.insertInAt(h, ix, op.Key, op.Value, final, b)
		op.OK = op.Err == nil
	case OpDelete:
		op.Result, op.OK = t.deleteInAt(h, ix, op.Key, b)
	case OpCommitShadow:
		op.OK = h.commitShadowInAt(ix, op.Key, op.Value != 0, b)
	}
}

// stExecOneAt is execOneAt for single-thread mode (§3.4.5): the same
// dispatch with synchronization-free op bodies. Memory-awareness is not
// stripped — the pipe engine's sliding-window prefetch still overlaps the
// batch's DRAM latency; §3.4.5 only removes CASes, resize checks and
// enter/leave notifications.
func (h *Handle) stExecOneAt(ix *index, op *Op, b uint64) {
	op.Err = nil
	// Inlined ops are rejected on Allocator-mode tables for the same
	// reasons as in execOneAt: slot words there are block references.
	if h.t.cfg.Mode == Allocator {
		op.OK, op.Err = false, ErrWrongMode
		return
	}
	switch op.Kind {
	case OpGet:
		op.Result, op.OK = h.stGetAt(ix, op.Key, b)
	case OpPut:
		op.Result, op.OK = h.stPutAt(ix, op.Key, op.Value, b)
	case OpInsert:
		op.Result, op.Err = h.stInsertAt(ix, op.Key, op.Value, slotValid, b)
		op.OK = op.Err == nil
	case OpInsertShadow:
		op.Result, op.Err = h.stInsertAt(ix, op.Key, op.Value, slotShadow, b)
		op.OK = op.Err == nil
	case OpDelete:
		op.Result, op.OK = h.stDeleteAt(ix, op.Key, b)
	case OpCommitShadow:
		op.OK = h.stCommitShadowAt(ix, op.Key, op.Value != 0, b)
	}
}

// commitShadowIn is CommitShadow against a specific entered index.
func (h *Handle) commitShadowIn(ix *index, key uint64, commit bool) bool {
	return h.commitShadowInAt(ix, key, commit, h.t.binFor(ix, key))
}

// commitShadowInAt is commitShadowIn with the key's bin precomputed.
func (h *Handle) commitShadowInAt(ix *index, key uint64, commit bool, b uint64) bool {
	t := h.t
	for {
		hdrAddr := ix.headerAddr(b)
		hdr := atomic.LoadUint64(hdrAddr)
		if nx := ix.redirect(b, hdr); nx != nil {
			ix = nx
			b = t.binFor(ix, key)
			continue
		}
		slot, _, st := ix.scanBin(b, hdr, key, -1, true)
		if slot == scanRetry {
			continue
		}
		if slot == scanMiss || st != slotShadow {
			return false
		}
		target := slotValid
		if !commit {
			target = slotInvalid
		}
		if atomic.CompareAndSwapUint64(hdrAddr, hdr, bumpVersion(withSlotState(hdr, slot, target))) {
			if commit {
				t.bumpVer(key)
			}
			return true
		}
	}
}

// PrefetchKey issues a software prefetch for the bin of key, the
// coroutine-style interface of §3.3: call it, yield to other work, then
// issue the request once the cache line has arrived.
func (h *Handle) PrefetchKey(key uint64) {
	ix := h.t.current.Load()
	b := h.t.binFor(ix, key)
	cpuops.PrefetchUint64(ix.headerAddr(b))
}
