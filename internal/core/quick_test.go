package core

import (
	"testing"
	"testing/quick"
)

// Model-based property test: a random operation sequence applied to the
// table and to a map[uint64]uint64 oracle must agree at every step and at
// the end. Run across table geometries that force chaining and resizing.
func TestQuickModelEquivalence(t *testing.T) {
	configs := []Config{
		{Bins: 4},                                          // heavy chaining
		{Bins: 4, Resizable: true, ChunkBins: 2},           // frequent resizes
		{Bins: 64, Hash: 1},                                // wyhash
		{Bins: 8, Resizable: true, SingleThread: true},     // single-thread path
		{Bins: 16, Resizable: true, StrongSnapshots: true}, // updater counting
	}
	for ci, cfg := range configs {
		cfg := cfg
		f := func(ops []uint16, keys []uint8) bool {
			tb := MustNew(cfg)
			h := tb.MustHandle()
			model := make(map[uint64]uint64)
			for i, op := range ops {
				if len(keys) == 0 {
					return true
				}
				k := uint64(keys[i%len(keys)]) % 48 // small space → collisions
				v := uint64(op)<<32 | uint64(i)
				switch op % 4 {
				case 0:
					_, err := h.Insert(k, v)
					_, exists := model[k]
					if exists != (err != nil) {
						t.Logf("cfg %d: insert(%d) err=%v exists=%v", ci, k, err, exists)
						return false
					}
					if err == nil {
						model[k] = v
					}
				case 1:
					got, ok := h.Delete(k)
					want, exists := model[k]
					if ok != exists || (ok && got != want) {
						t.Logf("cfg %d: delete(%d)=(%d,%v) want (%d,%v)", ci, k, got, ok, want, exists)
						return false
					}
					delete(model, k)
				case 2:
					old, ok := h.Put(k, v)
					want, exists := model[k]
					if ok != exists || (ok && old != want) {
						t.Logf("cfg %d: put(%d)=(%d,%v) want (%d,%v)", ci, k, old, ok, want, exists)
						return false
					}
					if ok {
						model[k] = v
					}
				default:
					got, ok := h.Get(k)
					want, exists := model[k]
					if ok != exists || (ok && got != want) {
						t.Logf("cfg %d: get(%d)=(%d,%v) want (%d,%v)", ci, k, got, ok, want, exists)
						return false
					}
				}
			}
			// Final sweep: table contents == model contents.
			if h.Len() != len(model) {
				t.Logf("cfg %d: len=%d model=%d", ci, h.Len(), len(model))
				return false
			}
			for k, want := range model {
				if got, ok := h.Get(k); !ok || got != want {
					t.Logf("cfg %d: final get(%d)=(%d,%v) want %d", ci, k, got, ok, want)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("config %d: %v", ci, err)
		}
	}
}

// Batch execution must be equivalent to issuing the same ops one at a time.
func TestQuickBatchEquivalence(t *testing.T) {
	f := func(raw []uint32) bool {
		tbA := MustNew(Config{Bins: 8, Resizable: true, ChunkBins: 2})
		tbB := MustNew(Config{Bins: 8, Resizable: true, ChunkBins: 2})
		ha, hb := tbA.MustHandle(), tbB.MustHandle()
		ops := make([]Op, 0, len(raw))
		for i, r := range raw {
			kind := OpKind(r % 4)
			if kind == OpInsertShadow {
				kind = OpInsert
			}
			ops = append(ops, Op{Kind: kind, Key: uint64(r % 32), Value: uint64(i) + 1})
		}
		// A: batched (in sub-batches of 7 to vary boundaries).
		for i := 0; i < len(ops); i += 7 {
			end := i + 7
			if end > len(ops) {
				end = len(ops)
			}
			ha.Exec(ops[i:end], false)
		}
		// B: one at a time.
		single := make([]Op, len(ops))
		copy(single, ops)
		for i := range single {
			switch single[i].Kind {
			case OpGet:
				single[i].Result, single[i].OK = hb.Get(single[i].Key)
			case OpPut:
				single[i].Result, single[i].OK = hb.Put(single[i].Key, single[i].Value)
			case OpInsert:
				single[i].Result, single[i].Err = hb.Insert(single[i].Key, single[i].Value)
				single[i].OK = single[i].Err == nil
			case OpDelete:
				single[i].Result, single[i].OK = hb.Delete(single[i].Key)
			}
		}
		for i := range ops {
			if ops[i].OK != single[i].OK || ops[i].Result != single[i].Result {
				t.Logf("op %d (%v key %d): batch (%d,%v) vs single (%d,%v)",
					i, ops[i].Kind, ops[i].Key, ops[i].Result, ops[i].OK,
					single[i].Result, single[i].OK)
				return false
			}
		}
		// Final state equivalence.
		var entriesA, entriesB map[uint64]uint64
		entriesA = map[uint64]uint64{}
		entriesB = map[uint64]uint64{}
		ha.Range(func(k, v uint64) bool { entriesA[k] = v; return true })
		hb.Range(func(k, v uint64) bool { entriesB[k] = v; return true })
		if len(entriesA) != len(entriesB) {
			return false
		}
		for k, v := range entriesA {
			if entriesB[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Occupancy invariant: occupied count from the probe equals live entries.
func TestQuickOccupancyMatchesLen(t *testing.T) {
	f := func(keys []uint16) bool {
		tb := MustNew(Config{Bins: 16, Resizable: true, ChunkBins: 4})
		h := tb.MustHandle()
		live := map[uint64]bool{}
		for _, k := range keys {
			key := uint64(k % 512)
			if live[key] {
				h.Delete(key)
				delete(live, key)
			} else if _, err := h.Insert(key, 1); err == nil {
				live[key] = true
			}
		}
		s := tb.Stats()
		return int(s.Occupied) == len(live) && h.Len() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
