package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestKVHashedVariants: the Hashed mutation forms are exactly their
// hashing counterparts when fed Table.HashOfKV, including across a resize
// (the memoized hash only changes modulus).
func TestKVHashedVariants(t *testing.T) {
	tb, h := newKV(t, Config{Bins: 8, VariableKV: true, Resizable: true})
	defer h.Close()
	const n = 2000 // force several resizes from 8 bins
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("key-%d-with-some-length", i)) }
	for i := 0; i < n; i++ {
		k := keyOf(i)
		if err := h.InsertKVHashed(0, k, []byte{byte(i)}, tb.HashOfKV(0, k)); err != nil {
			t.Fatalf("InsertKVHashed %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		k := keyOf(i)
		if v, ok := h.GetKV(0, k); !ok || !bytes.Equal(v, []byte{byte(i)}) {
			t.Fatalf("GetKV %d = %x,%v", i, v, ok)
		}
	}
	if err := h.InsertKVHashed(0, keyOf(7), nil, tb.HashOfKV(0, keyOf(7))); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate InsertKVHashed: %v", err)
	}
	for i := 0; i < n; i += 2 {
		k := keyOf(i)
		if !h.DeleteKVHashed(0, k, tb.HashOfKV(0, k)) {
			t.Fatalf("DeleteKVHashed %d missed", i)
		}
	}
	for i := 0; i < n; i++ {
		_, ok := h.GetKV(0, keyOf(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v want %v", i, ok, want)
		}
	}
	if h.DeleteKVHashed(0, keyOf(0), tb.HashOfKV(0, keyOf(0))) {
		t.Fatal("double delete succeeded")
	}
}

// TestKVPipelineMutations: pipeline mutations barrier the in-flight reads
// (completions fire before the mutation applies) and land through the
// hashed path.
func TestKVPipelineMutations(t *testing.T) {
	tb, h := newKV(t, Config{Bins: 64, VariableKV: true, Resizable: true})
	defer h.Close()
	var completed []string
	pl := h.KVPipeline(KVPipelineOpts{Window: 8, OnComplete: func(g *KVGet) {
		completed = append(completed, fmt.Sprintf("%s=%s,%v", g.Key, g.Value, g.OK))
	}})
	defer pl.Close()

	if err := pl.Insert(0, []byte("a"), []byte("1")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := pl.InsertHashed(0, []byte("b"), []byte("2"), tb.HashOfKV(0, []byte("b"))); err != nil {
		t.Fatalf("InsertHashed: %v", err)
	}
	// Enqueue reads, then mutate: the mutation must flush them first.
	pl.Get(0, []byte("a"))
	pl.Get(0, []byte("b"))
	if err := pl.PutHashed(0, []byte("a"), []byte("one"), tb.HashOfKV(0, []byte("a"))); err != nil {
		t.Fatalf("PutHashed: %v", err)
	}
	if len(completed) != 2 || completed[0] != "a=1,true" || completed[1] != "b=2,true" {
		t.Fatalf("reads did not complete before the mutation: %q", completed)
	}
	if v, ok := h.GetKV(0, []byte("a")); !ok || string(v) != "one" {
		t.Fatalf("after PutHashed: %q,%v", v, ok)
	}
	// Put on an absent key inserts.
	if err := pl.Put(0, []byte("c"), []byte("3")); err != nil {
		t.Fatalf("Put insert: %v", err)
	}
	if v, ok := h.GetKV(0, []byte("c")); !ok || string(v) != "3" {
		t.Fatalf("Put-inserted: %q,%v", v, ok)
	}
	if !pl.DeleteHashed(0, []byte("b"), tb.HashOfKV(0, []byte("b"))) {
		t.Fatal("DeleteHashed missed")
	}
	if pl.Delete(0, []byte("b")) {
		t.Fatal("second Delete succeeded")
	}
	if err := pl.Insert(0, []byte("a"), []byte("dup")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate pipeline Insert: %v", err)
	}
}
