// Package core implements the Dandelion Hashtable (DLHT) from
// "DLHT: A Non-blocking Resizable Hashtable with Fast Deletes and
// Memory-awareness" (HPDC'24): a closed-addressing concurrent hashtable
// built on bounded cache-line chaining with lock-free Gets/Inserts/Deletes,
// double-word-CAS Puts, software-prefetched batching, and a parallel,
// practically non-blocking resize.
//
// The exported surface of this package is re-exported by the top-level dlht
// package, which is the intended import path for applications.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/epoch"
	"repro/internal/hashfn"
)

// Mode selects one of DLHT's three operating modes (§3.1).
type Mode uint8

const (
	// Inlined stores 8-byte keys and 8-byte values directly in the slots.
	Inlined Mode = iota
	// Allocator stores values (and keys larger than 8 bytes) out of line;
	// slots carry 48-bit references with overloaded metadata bits. Gets
	// return pointers (byte views) rather than copies, and there is no Put.
	Allocator
	// HashSet stores only keys (at most 8 bytes); values are absent.
	HashSet
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Inlined:
		return "inlined"
	case Allocator:
		return "allocator"
	case HashSet:
		return "hashset"
	}
	return "unknown"
}

// Reserved transfer keys (§3.2.5): written into migrated slots so that a
// racing Put's double-word CAS must fail. One is used for even bins and one
// for odd bins, mirroring the paper; user keys may not take these values.
const (
	TransferKeyEven = ^uint64(0)     // 0xFFFFFFFFFFFFFFFF
	TransferKeyOdd  = ^uint64(0) - 1 // 0xFFFFFFFFFFFFFFFE
)

// Errors returned by table operations.
var (
	// ErrExists is returned by Insert when the key is already present; the
	// existing value accompanies it, matching the paper's "return its value
	// along with the corresponding flag".
	ErrExists = errors.New("dlht: key already exists")
	// ErrShadow is returned when an operation hits a key held in Shadow
	// state by an uncommitted shadow Insert (§3.2.2 transactions).
	ErrShadow = errors.New("dlht: key locked by shadow insert")
	// ErrFull is returned by Insert when the bin and link array are
	// exhausted and resizing is disabled.
	ErrFull = errors.New("dlht: index full and resizing disabled")
	// ErrReservedKey rejects the transfer-key values.
	ErrReservedKey = errors.New("dlht: key value reserved for resize transfer")
	// ErrWrongMode flags an API call not available in the table's mode.
	ErrWrongMode = errors.New("dlht: operation not supported in this mode")
	// ErrKeyTooLarge flags keys above 8 bytes outside Allocator mode.
	ErrKeyTooLarge = errors.New("dlht: key larger than 8 bytes requires Allocator mode")
	// ErrTooManyHandles is returned when more handles are requested than
	// Config.MaxThreads.
	ErrTooManyHandles = errors.New("dlht: handle limit reached; raise Config.MaxThreads")
)

// Config configures a Table. The zero value is usable: an Inlined,
// resizable table with modulo hashing and paper-default geometry.
type Config struct {
	// Mode selects Inlined (default), Allocator, or HashSet.
	Mode Mode
	// Bins is the initial number of bins. Defaults to 64K. Each bin is one
	// 64-byte primary bucket holding 3 slots.
	Bins uint64
	// LinkRatio is bins per link bucket (default 8, §3.1).
	LinkRatio int
	// Hash selects the bin-mapping hash (default Modulo, §3.4.3).
	Hash hashfn.Kind
	// Resizable enables the non-blocking parallel resize. When false, an
	// Insert that cannot find room returns ErrFull and the per-request
	// enter/leave notifications are compiled out of the hot path (§5.2.5).
	Resizable bool
	// SingleThread strips all synchronization (§3.4.5). The table must
	// then be used from exactly one goroutine.
	SingleThread bool
	// PrefetchWindow bounds how far ahead of execution the pipeline
	// engine's software prefetches run (§3.3). Exec, GetKVBatch and
	// pipelines created with Window 0 keep at most this many bins in
	// flight, so a prefetched cache line is touched while it is still
	// resident instead of being evicted by the tail of a huge batch. 0
	// selects the default (16); a negative value disables the bound for
	// the batch adapters and prefetches the whole batch up front (the
	// DRAMHiT-style full-batch pass, useful as a baseline; streaming
	// pipelines resolve it to the default).
	PrefetchWindow int
	// MaxThreads bounds the number of Handles (default 2×GOMAXPROCS).
	MaxThreads int
	// ChunkBins is the resize transfer chunk (default 16384, §3.2.5).
	ChunkBins uint64

	// Allocator-mode settings.

	// Alloc supplies the out-of-line allocator; nil selects the slab Arena
	// (the mimalloc analogue). Ignored outside Allocator mode.
	Alloc alloc.Allocator
	// VariableKV stores per-pair key/value sizes in the allocation header,
	// allowing mixed sizes in one index (§3.4.1). Costs 8 bytes per pair.
	VariableKV bool
	// ValueSize is the fixed value size when VariableKV is false.
	ValueSize int
	// Namespaces enables 12-bit namespace tags packed into slot metadata
	// (§3.4.2).
	Namespaces bool
	// EpochGC defers freeing of deleted out-of-line blocks until readers
	// have quiesced (§3.2.3). Opt-in, as in the paper.
	EpochGC bool
	// StrongSnapshots enables the blocking strongly-consistent snapshot
	// (§3.4.4); costs one counter update per mutating request.
	StrongSnapshots bool
	// TrackVersions maintains a per-key applied-mutation counter
	// (Handle.VersionOf), the last-write-wins arbiter the cluster layer
	// uses for online resharding and anti-entropy repair. Costs one
	// striped-lock map update per mutation; off by default.
	TrackVersions bool
}

func (c *Config) setDefaults() {
	if c.Bins == 0 {
		c.Bins = 1 << 16
	}
	if c.LinkRatio <= 0 {
		c.LinkRatio = 8
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 2 * runtime.GOMAXPROCS(0)
	}
	if c.ChunkBins == 0 {
		c.ChunkBins = 16384
	}
	if c.Mode == Allocator {
		if c.Alloc == nil {
			c.Alloc = alloc.NewArena()
		}
		if c.ValueSize <= 0 {
			c.ValueSize = 8
		}
	}
}

// Stats aggregates table counters.
type Stats struct {
	Resizes        uint64  // completed index migrations
	ResizeHelpers  uint64  // threads that joined a migration as helpers
	ChunksMoved    uint64  // transfer chunks processed
	KeysMoved      uint64  // slots migrated across indexes
	Bins           uint64  // current bin count
	LinkBuckets    uint64  // link buckets in the current index
	LinksUsed      uint64  // link buckets handed out in the current index
	Occupied       uint64  // live slots (point-in-time probe)
	Capacity       uint64  // total slot capacity
	Occupancy      float64 // Occupied / Capacity
	EpochFrees     uint64  // blocks reclaimed through the epoch GC
	AllocatorStats alloc.Stats
}

// Table is a DLHT instance. Construct with New; obtain a Handle per worker
// goroutine for all operations.
type Table struct {
	cfg     Config
	current atomic.Pointer[index]

	hash64 hashfn.Func64
	hashB  hashfn.FuncBytes

	// Per-handle announcement slots implement the index-GC protocol of
	// §3.2.5: a handle stores the index pointer it is operating on when it
	// enters and clears it when it leaves; the resizer waits until no slot
	// points at the drained index before retiring it.
	announces []announceSlot
	nHandles  atomic.Int32

	gc *epoch.Collector

	// vers counts applied mutations per key when Config.TrackVersions is
	// set; nil otherwise (the hot paths pay one nil check).
	vers *verIndex

	// freeIDs recycles handle ids returned through Handle.Close, so
	// long-lived processes with connection-scoped handles (the network
	// server) never exhaust MaxThreads.
	freeMu  sync.Mutex
	freeIDs []int

	// updaters counts in-flight mutating operations; used only when
	// StrongSnapshots is enabled. snapshotGate blocks new updates while a
	// strong snapshot drains the counter.
	updaters     atomic.Int64
	snapshotGate atomic.Uint32

	// Counters.
	resizes       atomic.Uint64
	resizeHelpers atomic.Uint64
	chunksMoved   atomic.Uint64
	keysMoved     atomic.Uint64
	epochFrees    atomic.Uint64
}

type announceSlot struct {
	ptr atomic.Pointer[index]
	// dlht:ok:fieldalignment — deliberate padding: each handle's announce
	// slot gets its own cache line so epoch announcements don't bounce.
	_ [56]byte
}

// New creates a Table from cfg.
func New(cfg Config) (*Table, error) {
	cfg.setDefaults()
	if cfg.Mode != Allocator && cfg.VariableKV {
		return nil, fmt.Errorf("%w: VariableKV", ErrWrongMode)
	}
	if cfg.Mode != Allocator && cfg.Namespaces {
		return nil, fmt.Errorf("%w: Namespaces", ErrWrongMode)
	}
	// SingleThread tables may still hand out several handles (e.g. a loader
	// and a runner); the contract is that all of them are used from one
	// goroutine only.
	t := &Table{
		cfg:       cfg,
		hash64:    hashfn.For64(cfg.Hash),
		hashB:     hashfn.ForBytes(cfg.Hash),
		announces: make([]announceSlot, cfg.MaxThreads),
	}
	if cfg.Mode == Allocator && cfg.EpochGC {
		t.gc = epoch.NewCollector(cfg.MaxThreads)
	}
	if cfg.TrackVersions {
		t.vers = newVerIndex()
	}
	t.current.Store(newIndex(cfg.Bins, cfg.LinkRatio, cfg.ChunkBins))
	return t, nil
}

// MustNew is New that panics on configuration errors; convenient in tests
// and examples.
func MustNew(cfg Config) *Table {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Mode returns the table's operating mode.
func (t *Table) Mode() Mode { return t.cfg.Mode }

// Resizable reports whether resizing is compiled in.
func (t *Table) Resizable() bool { return t.cfg.Resizable }

// NumBins returns the current number of bins (changes across resizes).
func (t *Table) NumBins() uint64 { return t.current.Load().numBins }

// Stats returns a point-in-time snapshot of the table counters. The
// occupancy probe walks the whole index; avoid calling it on a hot path.
func (t *Table) Stats() Stats {
	ix := t.current.Load()
	occ, cap := ix.occupancy()
	s := Stats{
		Resizes:       t.resizes.Load(),
		ResizeHelpers: t.resizeHelpers.Load(),
		ChunksMoved:   t.chunksMoved.Load(),
		KeysMoved:     t.keysMoved.Load(),
		Bins:          ix.numBins,
		LinkBuckets:   ix.numLinks,
		Occupied:      occ,
		Capacity:      cap,
		EpochFrees:    t.epochFrees.Load(),
	}
	if n := ix.nextLink.Load(); n > 1 {
		s.LinksUsed = n - 1
		if s.LinksUsed > ix.numLinks {
			s.LinksUsed = ix.numLinks
		}
	}
	if cap > 0 {
		s.Occupancy = float64(occ) / float64(cap)
	}
	if t.cfg.Alloc != nil {
		s.AllocatorStats = t.cfg.Alloc.Stats()
	}
	return s
}

// binFor maps a key hash to a bin of index ix.
func (t *Table) binFor(ix *index, key uint64) uint64 {
	return t.hash64(key) % ix.numBins
}

// HashOf returns the table's bin hash for key — the value bin mapping
// derives from (bin = hash % numBins per index), stable across resizes.
// Callers that route requests by key (the sharded executor) compute it
// once and hand it to Pipeline.EnqueueHashed, so routing and execution
// share one hash.
func (t *Table) HashOf(key uint64) uint64 { return t.hash64(key) }

// HashOfKV is HashOf for Allocator-mode byte keys under namespace ns.
func (t *Table) HashOfKV(ns uint16, key []byte) uint64 {
	hv := t.hashB(key)
	if ns != 0 {
		hv ^= (uint64(ns) + 1) * 0x9e3779b97f4a7c15
	}
	return hv
}

// SingleThread reports whether the table was configured single-threaded
// (§3.4.5) and must therefore only ever be driven from one goroutine.
func (t *Table) SingleThread() bool { return t.cfg.SingleThread }

// isReserved reports whether k collides with a transfer key.
func isReserved(k uint64) bool {
	return k == TransferKeyEven || k == TransferKeyOdd
}

// transferKeyFor returns the transfer key assigned to bin b (§3.2.5: "one
// key for odd and another for even bins").
func transferKeyFor(b uint64) uint64 {
	if b&1 == 0 {
		return TransferKeyEven
	}
	return TransferKeyOdd
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

// Handle is the per-goroutine interface to a Table. Handles are not safe
// for concurrent use; create one per worker.
type Handle struct {
	t  *Table
	id int
	eh *epoch.Handle
	// pinned tracks whether this handle currently pins an epoch. With
	// EpochGC enabled a handle stays pinned between operations so that the
	// byte views returned by GetKV remain valid until the handle's own next
	// AdvanceEpoch call (§3.2.3's client contract).
	pinned bool

	// xp and kvp are the handle's sliding-window pipeline engines, reused
	// across Exec and GetKVBatch calls: while a bin is being prefetched its
	// hash-derived coordinates are memoized in the engine ring so execution
	// never re-hashes the key. Handles are single-goroutine, so plain state
	// suffices; the rings are sized to the prefetch window on first use.
	// (Streaming Pipelines/KVPipelines carry their own engine state.)
	xp  *pipe
	kvp *kvPipe
}

// defaultPrefetchWindow is the Config.PrefetchWindow=0 distance. Sixteen
// in-flight lines stay comfortably inside L1 while still overlapping more
// DRAM latency than out-of-order execution covers on its own.
const defaultPrefetchWindow = 16

// prefetchWindow resolves the configured window against a batch of n
// requests: 0 means the default, negative means full-batch, and the result
// never exceeds n.
func (t *Table) prefetchWindow(n int) int {
	w := t.cfg.PrefetchWindow
	if w == 0 {
		w = defaultPrefetchWindow
	}
	if w < 0 || w > n {
		w = n
	}
	return w
}

// Handle allocates the next free per-thread handle, preferring ids
// recycled through Close.
func (t *Table) Handle() (*Handle, error) {
	t.freeMu.Lock()
	if n := len(t.freeIDs); n > 0 {
		id := t.freeIDs[n-1]
		t.freeIDs = t.freeIDs[:n-1]
		t.freeMu.Unlock()
		h := &Handle{t: t, id: id}
		if t.gc != nil {
			h.eh = t.gc.Handle(id)
		}
		return h, nil
	}
	t.freeMu.Unlock()
	id := int(t.nHandles.Add(1)) - 1
	if id >= t.cfg.MaxThreads {
		t.nHandles.Add(-1)
		return nil, ErrTooManyHandles
	}
	h := &Handle{t: t, id: id}
	if t.gc != nil {
		h.eh = t.gc.Handle(id)
	}
	return h, nil
}

// Table returns the table this handle operates on.
func (h *Handle) Table() *Table { return h.t }

// MustHandle is Handle that panics on exhaustion.
func (t *Table) MustHandle() *Handle {
	h, err := t.Handle()
	if err != nil {
		panic(err)
	}
	return h
}

// enter announces the handle's presence in the current index and returns
// it. The load/announce/validate loop is the hazard-pointer discipline that
// makes the resizer's quiescence wait sound. When resizing is disabled (or
// in single-thread mode) this collapses to a single pointer load — the
// exact cost difference measured by Fig 14's "Resizing" bar.
func (h *Handle) enter() *index {
	t := h.t
	if !t.cfg.Resizable || t.cfg.SingleThread {
		return t.current.Load()
	}
	slot := &t.announces[h.id].ptr
	for {
		ix := t.current.Load()
		slot.Store(ix)
		if t.current.Load() == ix {
			h.pin()
			return ix
		}
	}
}

// pin establishes the persistent epoch pin for EpochGC tables.
func (h *Handle) pin() {
	if h.eh != nil && !h.pinned {
		h.eh.Enter()
		h.pinned = true
	}
}

// leave clears the announcement. The epoch pin is deliberately retained —
// see Handle.pinned.
func (h *Handle) leave() {
	t := h.t
	if !t.cfg.Resizable || t.cfg.SingleThread {
		return
	}
	t.announces[h.id].ptr.Store(nil)
}

// beginUpdate/endUpdate bracket mutating operations when strong snapshots
// are enabled.
func (t *Table) beginUpdate() {
	if !t.cfg.StrongSnapshots {
		return
	}
	for t.snapshotGate.Load() != 0 {
		runtime.Gosched()
	}
	t.updaters.Add(1)
}

func (t *Table) endUpdate() {
	if !t.cfg.StrongSnapshots {
		return
	}
	t.updaters.Add(-1)
}

// Close returns the handle's id to the table for reuse by a future Handle
// call. The handle must not be used again; byte views it returned become
// invalid once the id is reissued. Close exists for connection-scoped
// handles (one per network connection): without it a long-lived server
// would leak announce slots until ErrTooManyHandles.
func (h *Handle) Close() {
	t := h.t
	if t == nil {
		return // already closed
	}
	h.t = nil
	t.announces[h.id].ptr.Store(nil)
	if h.eh != nil && h.pinned {
		h.eh.Leave()
		h.pinned = false
	}
	t.freeMu.Lock()
	t.freeIDs = append(t.freeIDs, h.id)
	t.freeMu.Unlock()
}

// AdvanceEpoch is the periodic client call of §3.2.3: it refreshes this
// handle's observed epoch, attempts to move the global epoch forward, and
// reclaims blocks retired two epochs ago. Any byte views previously
// returned to this handle by GetKV/UpdateKV become invalid. It returns the
// number of blocks freed by this call. No-op unless EpochGC is enabled.
func (h *Handle) AdvanceEpoch() int {
	if h.eh == nil {
		return 0
	}
	h.eh.Enter() // re-observe the current epoch; keeps the handle pinned
	h.pinned = true
	n := h.eh.Advance()
	if n > 0 {
		h.t.epochFrees.Add(uint64(n))
	}
	return n
}
