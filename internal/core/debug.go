package core

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// DumpBin renders a human-readable view of one bin of the current index —
// header version, bin state, slot states and the raw slot words. Intended
// for debugging and tests; it takes no locks and may show a torn view under
// concurrency.
func (t *Table) DumpBin(b uint64) string {
	ix := t.current.Load()
	if b >= ix.numBins {
		return fmt.Sprintf("bin %d out of range (%d bins)", b, ix.numBins)
	}
	hdr := atomic.LoadUint64(ix.headerAddr(b))
	meta := atomic.LoadUint64(ix.linkMetaAddr(b))
	var sb strings.Builder
	fmt.Fprintf(&sb, "bin %d: version=%d state=%s link1=%d link2=%d\n",
		b, version(hdr), binStateName(binState(hdr)), linkOne(meta), linkTwo(meta))
	limit := slotLimit(meta)
	for i := 0; i < limit; i++ {
		st := slotState(hdr, i)
		if st == slotInvalid {
			continue
		}
		k, v := ix.loadSlot(b, meta, i)
		fmt.Fprintf(&sb, "  slot %2d [%s] key=%#x val=%#x\n", i, slotStateName(st), k, v)
	}
	return sb.String()
}

// DumpStats renders the table counters compactly.
func (t *Table) DumpStats() string {
	s := t.Stats()
	return fmt.Sprintf(
		"bins=%d links=%d/%d occupied=%d/%d (%.1f%%) resizes=%d helpers=%d chunks=%d moved=%d epochFrees=%d",
		s.Bins, s.LinksUsed, s.LinkBuckets, s.Occupied, s.Capacity,
		s.Occupancy*100, s.Resizes, s.ResizeHelpers, s.ChunksMoved, s.KeysMoved, s.EpochFrees)
}

func binStateName(s uint64) string {
	switch s {
	case binNoTransfer:
		return "NoTransfer"
	case binInTransfer:
		return "InTransfer"
	case binDoneTransfer:
		return "DoneTransfer"
	}
	return "?"
}

func slotStateName(s uint64) string {
	switch s {
	case slotInvalid:
		return "Invalid"
	case slotTryInsert:
		return "TryIns"
	case slotValid:
		return "Valid"
	case slotShadow:
		return "Shadow"
	}
	return "?"
}
