package core

import "testing"

// TestLocalStoreSyncOps: the Handle adapter preserves the miss/err split of
// the Store contract — misses are (ok=false, err=nil), duplicates are
// (existing, false, nil).
func TestLocalStoreSyncOps(t *testing.T) {
	tbl := MustNew(Config{Bins: 1 << 8, Resizable: true})
	s, err := tbl.Store()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, inserted, err := s.Insert(1, 10); err != nil || !inserted {
		t.Fatalf("Insert = inserted=%v err=%v", inserted, err)
	}
	if existing, inserted, err := s.Insert(1, 11); err != nil || inserted || existing != 10 {
		t.Fatalf("dup Insert = (%d,%v,%v), want (10,false,nil)", existing, inserted, err)
	}
	if v, ok, err := s.Get(1); err != nil || !ok || v != 10 {
		t.Fatalf("Get = (%d,%v,%v)", v, ok, err)
	}
	if prev, ok, err := s.Put(1, 12); err != nil || !ok || prev != 10 {
		t.Fatalf("Put = (%d,%v,%v)", prev, ok, err)
	}
	if _, ok, err := s.Put(2, 1); err != nil || ok {
		t.Fatalf("Put(missing) = ok=%v err=%v, want miss", ok, err)
	}
	if prev, ok, err := s.Delete(1); err != nil || !ok || prev != 12 {
		t.Fatalf("Delete = (%d,%v,%v)", prev, ok, err)
	}
	if _, ok, _ := s.Get(1); ok {
		t.Fatal("Get found a deleted key")
	}
}

// TestLocalStorePipe: completions arrive in enqueue order with the same
// results the sync surface reports.
func TestLocalStorePipe(t *testing.T) {
	tbl := MustNew(Config{Bins: 1 << 8, Resizable: true})
	s := tbl.MustStore()
	defer s.Close()

	var got []Completion
	p, err := s.Pipe(PipeOpts{Window: 4, OnComplete: func(c Completion) { got = append(got, c) }})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := uint64(0); i < n; i++ {
		if err := p.Insert(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if err := p.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Insert(0, 99); err != nil { // duplicate
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*n+1 {
		t.Fatalf("completions = %d, want %d", len(got), 2*n+1)
	}
	for i := uint64(0); i < n; i++ {
		if c := got[i]; c.Kind != OpInsert || c.Key != i || !c.OK || c.Err != nil {
			t.Fatalf("insert completion %d = %+v", i, c)
		}
		if c := got[n+i]; c.Kind != OpGet || c.Key != i || !c.OK || c.Value != i*3 {
			t.Fatalf("get completion %d = %+v", i, c)
		}
	}
	if c := got[2*n]; c.OK || c.Err != ErrExists || c.Value != 0*3 {
		t.Fatalf("dup insert completion = %+v, want ErrExists with existing value", c)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// The store stays usable after its pipe closes, and handle ids recycle
	// through Store.Close.
	if v, ok, _ := s.Get(5); !ok || v != 15 {
		t.Fatalf("Get(5) after pipe = (%d,%v)", v, ok)
	}
}

// TestStoreHandleRecycling: per-worker Stores return their handles, so far
// more Stores than MaxThreads can be opened sequentially.
func TestStoreHandleRecycling(t *testing.T) {
	tbl := MustNew(Config{Bins: 1 << 8, MaxThreads: 2})
	for i := 0; i < 64; i++ {
		s, err := tbl.Store()
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		if _, _, err := s.Insert(uint64(i), 1); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
}
