package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/alloc"
)

// Allocator mode (§3.1 mode 2, §3.4.1, §3.4.2): values — and keys larger
// than 8 bytes — live out of line in blocks obtained from the configured
// allocator. The slot's key word holds the inlined key (≤8 B) or the key's
// first 8 bytes as a filter; the slot's value word packs a 48-bit block
// reference with a 4-bit key-size code and a 12-bit namespace in the 16
// most significant bits, exactly the paper's pointer-overloading layout.

// Value-word encoding.
const (
	nsShift      = alloc.RefBits // bits 48..59
	keyCodeShift = 60            // bits 60..63
	nsMask       = 0xfff
	// bigKeyCode marks keys longer than 8 bytes; their length lives in the
	// block header ("four bits suffice, as keys larger than 8 bytes anyway
	// need to dereference the pointer").
	bigKeyCode = 0xf
)

// MaxNamespace is the largest namespace id (12 bits, §3.4.2).
const MaxNamespace = nsMask

// kvBlockHeader is the [klen u32][vlen u32] prefix stored when either
// VariableKV is enabled or the key does not fit the slot.
const kvBlockHeader = 8

// Errors specific to Allocator mode.
var (
	// ErrValueSize flags a value whose size differs from Config.ValueSize
	// on a table without VariableKV, or a key+value pair too large for
	// one block of the configured allocator (the slab Arena serves at
	// most alloc.MaxBlock bytes).
	ErrValueSize = errors.New("dlht: value size differs from Config.ValueSize (enable VariableKV)")
	// ErrNamespace flags a namespace id out of range or used on a table
	// without Namespaces enabled.
	ErrNamespace = errors.New("dlht: namespace out of range or not enabled")
	// ErrEmptyKey flags zero-length keys.
	ErrEmptyKey = errors.New("dlht: empty key")
)

func encodeSlotVal(ref alloc.Ref, keyCode int, ns uint16) uint64 {
	return uint64(ref) | uint64(ns&nsMask)<<nsShift | uint64(keyCode)<<keyCodeShift
}

func refOf(v uint64) alloc.Ref { return alloc.Ref(v & alloc.RefMask) }
func keyCodeOf(v uint64) int   { return int(v >> keyCodeShift) }
func nsOf(v uint64) uint16     { return uint16(v>>nsShift) & nsMask }

// inlineKeyWord packs up to the first 8 key bytes little-endian.
func inlineKeyWord(key []byte) uint64 {
	var w uint64
	n := len(key)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		w |= uint64(key[i]) << (8 * uint(i))
	}
	return w
}

// keyCodeFor returns the 4-bit key-size code for a key.
func keyCodeFor(key []byte) int {
	if len(key) > 8 {
		return bigKeyCode
	}
	return len(key)
}

// binForKV maps a byte key (plus namespace salt) to a bin.
func (t *Table) binForKV(ix *index, key []byte, ns uint16) uint64 {
	return t.HashOfKV(ns, key) % ix.numBins
}

// checkKV validates mode, namespace and value size for the KV API.
func (t *Table) checkKV(ns uint16, key []byte, val []byte, isInsert bool) error {
	if t.cfg.Mode != Allocator {
		return ErrWrongMode
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if ns != 0 && (!t.cfg.Namespaces || ns > MaxNamespace) {
		return ErrNamespace
	}
	if isInsert {
		if !t.cfg.VariableKV && len(val) != t.cfg.ValueSize {
			return ErrValueSize
		}
		// The pair must fit one allocator block; without this gate an
		// oversized wire insert would surface as an allocator panic
		// instead of a status.
		if max := t.cfg.Alloc.MaxAlloc(); max > 0 {
			if size, _ := t.blockGeometry(len(key), len(val)); size > max {
				return fmt.Errorf("%w: key+value block of %d bytes exceeds the allocator's %d-byte max", ErrValueSize, size, max)
			}
		}
	}
	return nil
}

// blockGeometry computes the block size and the value offset for a pair.
func (t *Table) blockGeometry(klen, vlen int) (size, valOff int) {
	hasHdr := t.cfg.VariableKV || klen > 8
	if hasHdr {
		valOff = kvBlockHeader
		if klen > 8 {
			valOff += klen
		}
	}
	return valOff + vlen, valOff
}

// writeBlock fills a freshly allocated block.
func (t *Table) writeBlock(b []byte, key, val []byte) {
	hasHdr := t.cfg.VariableKV || len(key) > 8
	off := 0
	if hasHdr {
		putU32(b[0:], uint32(len(key)))
		putU32(b[4:], uint32(len(val)))
		off = kvBlockHeader
		if len(key) > 8 {
			copy(b[off:], key)
			off += len(key)
		}
	}
	copy(b[off:], val)
}

// valueView resolves the value bytes of a slot's value word. vlenHint is
// used when the block has no header (fixed-size values, inlined key).
func (t *Table) valueView(val uint64) []byte {
	ref := refOf(val)
	hasHdr := t.cfg.VariableKV || keyCodeOf(val) == bigKeyCode
	if !hasHdr {
		return t.cfg.Alloc.Bytes(ref, t.cfg.ValueSize)
	}
	hdr := t.cfg.Alloc.Bytes(ref, kvBlockHeader)
	klen := int(getU32(hdr[0:]))
	vlen := int(getU32(hdr[4:]))
	valOff := kvBlockHeader
	if klen > 8 {
		valOff += klen
	}
	return t.cfg.Alloc.Bytes(ref, valOff+vlen)[valOff:]
}

// matchKV reports whether a slot's (keyWord, valWord) matches the lookup
// key. Cheap filters first (key word, size code, namespace), then the full
// out-of-line comparison for big keys.
func (t *Table) matchKV(kw, vw uint64, wantKW uint64, wantCode int, ns uint16, key []byte) bool {
	if kw != wantKW || keyCodeOf(vw) != wantCode || nsOf(vw) != ns {
		return false
	}
	if wantCode != bigKeyCode {
		return true
	}
	ref := refOf(vw)
	hdr := t.cfg.Alloc.Bytes(ref, kvBlockHeader)
	klen := int(getU32(hdr[0:]))
	if klen != len(key) {
		return false
	}
	stored := t.cfg.Alloc.Bytes(ref, kvBlockHeader+klen)[kvBlockHeader:]
	for i := range key {
		if stored[i] != key[i] {
			return false
		}
	}
	return true
}

// scanBinKV is scanBin with the Allocator-mode match predicate. Big-key
// block reads race with frees only when the slot was concurrently deleted,
// in which case the final header validation forces a retry; the arena keeps
// the memory mapped, so the stale read is safe.
func (t *Table) scanBinKV(ix *index, b uint64, hdr uint64, wantKW uint64, wantCode int, ns uint16, key []byte) (slot int, val uint64) {
	meta := atomic.LoadUint64(ix.linkMetaAddr(b))
	limit := slotLimit(meta)
	hdrAddr := ix.headerAddr(b)
	for i := 0; i < limit; i++ {
		if slotState(hdr, i) != slotValid {
			continue
		}
		kw, vw := ix.loadSlot(b, meta, i)
		if !t.matchKV(kw, vw, wantKW, wantCode, ns, key) {
			continue
		}
		if atomic.LoadUint64(hdrAddr) != hdr {
			return scanRetry, 0
		}
		return i, vw
	}
	if atomic.LoadUint64(hdrAddr) != hdr {
		return scanRetry, 0
	}
	return scanMiss, 0
}

// ---------------------------------------------------------------------------
// Public KV API
// ---------------------------------------------------------------------------

// GetKV looks up key under namespace ns and returns a view of its value —
// the paper's pointer API (§3.2.1): no copy is made, and the caller may
// mutate the view in place to update the value. With EpochGC enabled the
// view stays valid until this handle's next AdvanceEpoch call; without it,
// until the key is deleted.
func (h *Handle) GetKV(ns uint16, key []byte) ([]byte, bool) {
	t := h.t
	if err := t.checkKV(ns, key, nil, false); err != nil {
		panic(err)
	}
	ix := h.enter()
	defer h.leave()
	vw, ok := t.lookupKVSlot(ix, ns, key)
	if !ok {
		return nil, false
	}
	if debugAsserts {
		h.assertViewPinned()
	}
	return t.valueView(vw), true
}

// CheckKV validates a KV request against the table's mode and
// configuration without executing it: ErrWrongMode outside Allocator mode,
// ErrNamespace for an out-of-range or disabled namespace, ErrEmptyKey, and
// (for inserts) ErrValueSize on fixed-size tables. GetKV/DeleteKV panic on
// these conditions — they are local API misuse — so callers relaying
// untrusted requests (the network server) gate on CheckKV first and turn
// failures into wire statuses.
func (t *Table) CheckKV(ns uint16, key, val []byte, isInsert bool) error {
	return t.checkKV(ns, key, val, isInsert)
}

// GetKVCopy is GetKV but returns a private copy of the value, for callers
// that must hold it across epoch advances.
func (h *Handle) GetKVCopy(ns uint16, key []byte) ([]byte, bool) {
	v, ok := h.GetKV(ns, key)
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// UpdateKV applies fn to the live value of key in place — the pointer-API
// update pattern motivated in §3.2.1 (read-modify-write, partial updates,
// custom concurrency). fn must synchronize with other writers of the same
// key at the application level. Returns false when the key is absent.
func (h *Handle) UpdateKV(ns uint16, key []byte, fn func(val []byte)) bool {
	v, ok := h.GetKV(ns, key)
	if !ok {
		return false
	}
	fn(v)
	return true
}

// InsertKV adds key→val under namespace ns. Returns ErrExists if the key is
// present, ErrFull when out of room on a non-resizable table, ErrValueSize
// on fixed-size tables with a mismatched value.
func (h *Handle) InsertKV(ns uint16, key, val []byte) error {
	return h.InsertKVHashed(ns, key, val, h.t.HashOfKV(ns, key))
}

// InsertKVHashed is InsertKV with the key's hash — as returned by
// Table.HashOfKV — precomputed by the caller. Routing layers that already
// hashed the key to pick a shard pass the hash down instead of paying it
// again; the hash stays valid across resizes (only the modulus changes).
func (h *Handle) InsertKVHashed(ns uint16, key, val []byte, hash uint64) error {
	t := h.t
	if err := t.checkKV(ns, key, val, true); err != nil {
		return err
	}
	t.beginUpdate()
	ix := h.enter()
	err := t.insertKVIn(h, ix, ns, key, val, hash)
	h.leave()
	t.endUpdate()
	return err
}

func (t *Table) insertKVIn(h *Handle, ix *index, ns uint16, key, val []byte, hash uint64) error {
	wantKW := inlineKeyWord(key)
	wantCode := keyCodeFor(key)
	// The block is allocated once and reused across retries; freed on any
	// failure path (paper §3.2.2 Allocator note).
	var ref alloc.Ref
	fail := func(err error) error {
		if !ref.IsNil() {
			t.cfg.Alloc.Free(ref)
		}
		return err
	}
indexLoop:
	for {
		b := hash % ix.numBins
		for {
			hdrAddr := ix.headerAddr(b)
			hdr := atomic.LoadUint64(hdrAddr)
			if nx := ix.redirect(b, hdr); nx != nil {
				ix = nx
				continue indexLoop
			}
			slot, _ := t.scanBinKV(ix, b, hdr, wantKW, wantCode, ns, key)
			if slot == scanRetry {
				continue
			}
			if slot >= 0 {
				return fail(ErrExists)
			}
			i := firstInvalidSlot(hdr, slotsPerBin)
			if i < 0 {
				nx, err := t.resizeOrFail(h, ix)
				if err != nil {
					return fail(err)
				}
				ix = nx
				continue indexLoop
			}
			if !atomic.CompareAndSwapUint64(hdrAddr, hdr, bumpVersion(withSlotState(hdr, i, slotTryInsert))) {
				continue
			}
			meta := atomic.LoadUint64(ix.linkMetaAddr(b))
			if need, field := slotNeedsChain(meta, i); need {
				newMeta, ok := t.chainBucket(ix, b, field)
				if !ok {
					t.releaseSlot(ix, b, i)
					nx, err := t.resizeOrFail(h, ix)
					if err != nil {
						return fail(err)
					}
					ix = nx
					continue indexLoop
				}
				meta = newMeta
			}
			// Allocate and fill the out-of-line block now that the slot is
			// claimed (§3.2.2: "the Insert algorithm allocates memory in
			// step 4.1").
			if ref.IsNil() {
				size, _ := t.blockGeometry(len(key), len(val))
				var blk []byte
				ref, blk = t.cfg.Alloc.Alloc(size)
				t.writeBlock(blk, key, val)
			}
			ix.storeSlot(b, meta, i, wantKW, encodeSlotVal(ref, wantCode, ns))
			err, done := t.finalizeInsertKV(ix, b, i, wantKW, wantCode, ns, key)
			if done {
				if err != nil {
					return fail(err)
				}
				return nil
			}
			ix = ix.nextIndex()
			continue indexLoop
		}
	}
}

// finalizeInsertKV is step 5 for the KV path.
func (t *Table) finalizeInsertKV(ix *index, b uint64, i int, wantKW uint64, wantCode int, ns uint16, key []byte) (error, bool) {
	hdrAddr := ix.headerAddr(b)
	for {
		hdr := atomic.LoadUint64(hdrAddr)
		if binState(hdr) != binNoTransfer {
			if binState(hdr) == binInTransfer {
				ix.waitBinTransferred(b)
			}
			return nil, false
		}
		slot, _ := t.scanBinKV(ix, b, hdr, wantKW, wantCode, ns, key)
		if slot == scanRetry {
			continue
		}
		if slot >= 0 && slot != i {
			t.releaseSlot(ix, b, i)
			return ErrExists, true
		}
		if atomic.CompareAndSwapUint64(hdrAddr, hdr, bumpVersion(withSlotState(hdr, i, slotValid))) {
			return nil, true
		}
	}
}

// DeleteKV removes key under namespace ns, reclaiming the slot instantly
// and the out-of-line block immediately or via the epoch GC.
func (h *Handle) DeleteKV(ns uint16, key []byte) bool {
	return h.DeleteKVHashed(ns, key, h.t.HashOfKV(ns, key))
}

// DeleteKVHashed is DeleteKV with the key's hash — as returned by
// Table.HashOfKV — precomputed by the caller; see InsertKVHashed.
func (h *Handle) DeleteKVHashed(ns uint16, key []byte, hash uint64) bool {
	t := h.t
	if err := t.checkKV(ns, key, nil, false); err != nil {
		panic(err)
	}
	t.beginUpdate()
	ix := h.enter()
	ok := t.deleteKVIn(h, ix, ns, key, hash)
	h.leave()
	t.endUpdate()
	return ok
}

func (t *Table) deleteKVIn(h *Handle, ix *index, ns uint16, key []byte, hash uint64) bool {
	wantKW := inlineKeyWord(key)
	wantCode := keyCodeFor(key)
	for {
		b := hash % ix.numBins
		for {
			hdrAddr := ix.headerAddr(b)
			hdr := atomic.LoadUint64(hdrAddr)
			if nx := ix.redirect(b, hdr); nx != nil {
				ix = nx
				break
			}
			slot, vw := t.scanBinKV(ix, b, hdr, wantKW, wantCode, ns, key)
			if slot == scanRetry {
				continue
			}
			if slot == scanMiss {
				return false
			}
			if atomic.CompareAndSwapUint64(hdrAddr, hdr, bumpVersion(withSlotState(hdr, slot, slotInvalid))) {
				t.afterDelete(h, vw)
				return true
			}
		}
	}
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
