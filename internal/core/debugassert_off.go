//go:build !dlhtdebug

package core

// Release builds: debugAsserts is a false constant, so every
// `if debugAsserts { ... }` call site is dead-code-eliminated along
// with these empty bodies. See debugassert_on.go.
const debugAsserts = false

func (h *Handle) assertViewPinned() {}

func (t *Table) assertBinChain(ix *index, b uint64) {}
