package core

import (
	"runtime"
	"sync/atomic"
)

// Iterator support (§3.4.4). The default iterator gives the weakly
// consistent snapshot the paper's clients prefer: non-blocking, no
// migration, each bin internally consistent but the whole traversal not a
// point-in-time cut. Snapshot gives the strongly consistent variant by
// stalling updates for the duration — the paper implements this with a
// same-size migration; stalling achieves the same "updates stop, Gets
// proceed" contract without copying the index.

// Entry is one key-value pair produced by an iterator.
type Entry struct {
	Key   uint64
	Value uint64
}

// Range iterates over all live entries, calling fn until it returns false.
// Weakly consistent: entries inserted or deleted concurrently may or may
// not be observed, but every returned pair was present at some point during
// the traversal, and each bin is read atomically (version-validated).
// Shadow entries are hidden, as everywhere.
func (h *Handle) Range(fn func(key, val uint64) bool) {
	ix := h.enter()
	defer h.leave()
	var buf [slotsPerBin]Entry
	for b := uint64(0); b < ix.numBins; b++ {
		n := h.t.collectBin(ix, b, buf[:0], 0)
		for _, e := range n {
			if !fn(e.Key, e.Value) {
				return
			}
		}
	}
}

// collectBin gathers the live entries of bin b with seqlock validation.
// When the bin has been migrated it recurses into the successor index: with
// hash-mod addressing and multiplicative growth, old bin b's keys land
// exactly in new bins {b + j·oldBins}, so the traversal stays duplicate
// free. depth bounds pathological recursion through nested resizes.
func (t *Table) collectBin(ix *index, b uint64, out []Entry, depth int) []Entry {
	hdrAddr := ix.headerAddr(b)
	for attempt := 0; ; attempt++ {
		hdr := atomic.LoadUint64(hdrAddr)
		switch binState(hdr) {
		case binInTransfer:
			ix.waitBinTransferred(b)
			continue
		case binDoneTransfer:
			if depth > 8 {
				return out // give up on a resize storm; weak snapshot
			}
			nx := ix.nextIndex()
			factor := nx.numBins / ix.numBins
			if factor == 0 {
				factor = 1
			}
			for j := uint64(0); j < factor; j++ {
				out = t.collectBin(nx, b+j*ix.numBins, out, depth+1)
			}
			return out
		}
		meta := atomic.LoadUint64(ix.linkMetaAddr(b))
		limit := slotLimit(meta)
		start := len(out)
		for i := 0; i < limit; i++ {
			if slotState(hdr, i) != slotValid {
				continue
			}
			k, v := ix.loadSlot(b, meta, i)
			out = append(out, Entry{k, v})
		}
		if atomic.LoadUint64(hdrAddr) == hdr {
			return out
		}
		out = out[:start]
		if attempt > 32 {
			runtime.Gosched()
		}
	}
}

// KVEntry is one namespace/key/value triple produced by RangeKV. The byte
// slices are private copies owned by the callback.
type KVEntry struct {
	NS    uint16
	Key   []byte
	Value []byte
}

// RangeKV is Range for Allocator-mode tables: it iterates over all live
// out-of-line pairs, calling fn with the namespace and private copies of
// the key and value bytes until fn returns false. The same weak
// consistency as Range applies, and each bin's entries are copied inside
// its seqlock window, so a pair deleted (and its block reclaimed)
// mid-read is discarded and retried rather than observed torn. Returns
// ErrWrongMode outside Allocator mode.
func (h *Handle) RangeKV(fn func(ns uint16, key, val []byte) bool) error {
	t := h.t
	if t.cfg.Mode != Allocator {
		return ErrWrongMode
	}
	ix := h.enter()
	defer h.leave()
	var buf []KVEntry
	for b := uint64(0); b < ix.numBins; b++ {
		buf = t.collectBinKV(ix, b, buf[:0], 0)
		for i := range buf {
			if !fn(buf[i].NS, buf[i].Key, buf[i].Value) {
				return nil
			}
		}
	}
	return nil
}

// collectBinKV gathers bin b's live KV pairs with seqlock validation,
// copying key and value bytes before the final header check so a
// concurrent delete-and-reuse of a block forces a retry instead of a torn
// copy. Block reads racing a free are safe — the arena keeps the memory
// mapped (see scanBinKV) — but their contents are untrusted until the
// header validates, so block-derived lengths are bounds-checked before
// use.
func (t *Table) collectBinKV(ix *index, b uint64, out []KVEntry, depth int) []KVEntry {
	maxBlock := t.cfg.Alloc.MaxAlloc()
	if maxBlock <= 0 {
		maxBlock = 64 << 20
	}
	hdrAddr := ix.headerAddr(b)
	for attempt := 0; ; attempt++ {
		hdr := atomic.LoadUint64(hdrAddr)
		switch binState(hdr) {
		case binInTransfer:
			ix.waitBinTransferred(b)
			continue
		case binDoneTransfer:
			if depth > 8 {
				return out
			}
			nx := ix.nextIndex()
			factor := nx.numBins / ix.numBins
			if factor == 0 {
				factor = 1
			}
			for j := uint64(0); j < factor; j++ {
				out = t.collectBinKV(nx, b+j*ix.numBins, out, depth+1)
			}
			return out
		}
		meta := atomic.LoadUint64(ix.linkMetaAddr(b))
		limit := slotLimit(meta)
		start := len(out)
		sane := true
		for i := 0; i < limit && sane; i++ {
			if slotState(hdr, i) != slotValid {
				continue
			}
			kw, vw := ix.loadSlot(b, meta, i)
			code := keyCodeOf(vw)
			ref := refOf(vw)
			var key, val []byte
			if code != bigKeyCode {
				if code == 0 {
					sane = false // torn slot pair; header check will retry
					break
				}
				key = make([]byte, code)
				for j := range key {
					key[j] = byte(kw >> (8 * uint(j)))
				}
			}
			hasHdr := t.cfg.VariableKV || code == bigKeyCode
			if !hasHdr {
				val = append([]byte(nil), t.cfg.Alloc.Bytes(ref, t.cfg.ValueSize)...)
			} else {
				bh := t.cfg.Alloc.Bytes(ref, kvBlockHeader)
				klen := int(getU32(bh[0:]))
				vlen := int(getU32(bh[4:]))
				if klen <= 0 || vlen < 0 || klen+vlen+kvBlockHeader > maxBlock {
					sane = false
					break
				}
				valOff := kvBlockHeader
				if klen > 8 {
					valOff += klen
				}
				blk := t.cfg.Alloc.Bytes(ref, valOff+vlen)
				if code == bigKeyCode {
					key = append([]byte(nil), blk[kvBlockHeader:kvBlockHeader+klen]...)
				}
				val = append([]byte(nil), blk[valOff:]...)
			}
			out = append(out, KVEntry{NS: nsOf(vw), Key: key, Value: val})
		}
		if sane && atomic.LoadUint64(hdrAddr) == hdr {
			return out
		}
		out = out[:start]
		if attempt > 32 {
			runtime.Gosched()
		}
	}
}

// ScanStep is the resumable cursor under the cluster migration stream: it
// collects the live entries of old-geometry bins [startBin, …) and reports
// where to resume. The cursor is expressed in the geometry of the first
// call — origBins==0 means "adopt the current root index size" and the
// adopted size is returned for the caller to thread through subsequent
// calls. Because resize growth is multiplicative, origBins always divides
// the current index size, so old bin b maps exactly onto current bins
// {b + j·origBins}: the traversal never misses a key across an arbitrary
// number of concurrent resizes, and collectBin's recursion covers resizes
// that land mid-step. Weakly consistent like Range — concurrent mutations
// may or may not be observed — which is exactly what the migration
// pipeline wants (racing foreground writes are journaled and re-copied by
// the coordinator). At least one old bin is consumed per call even when it
// overflows maxEnts, so progress is guaranteed; done reports cursor
// exhaustion. Allocator-mode tables are not scannable this way (their
// value words are block refs); use RangeKV.
func (h *Handle) ScanStep(origBins, startBin uint64, maxEnts int) (ents []Entry, newOrigBins, nextBin uint64, done bool) {
	ix := h.enter()
	defer h.leave()
	if origBins == 0 {
		origBins = ix.numBins
	}
	factor := ix.numBins / origBins
	for factor == 0 {
		// The cursor's geometry is newer than this handle's view of the
		// root. With origBins taken from a prior ScanStep this cannot
		// happen (the root only grows); tolerate a fabricated cursor by
		// walking forward while a successor exists.
		nx := ix.next.Load()
		if nx == nil {
			return nil, origBins, origBins, true
		}
		ix = nx
		factor = ix.numBins / origBins
	}
	b := startBin
	for ; b < origBins; b++ {
		for j := uint64(0); j < factor; j++ {
			ents = h.t.collectBin(ix, b+j*origBins, ents, 0)
		}
		if len(ents) >= maxEnts {
			b++
			break
		}
	}
	return ents, origBins, b, b >= origBins
}

// Snapshot returns a strongly consistent copy of all entries. It requires
// Config.StrongSnapshots and blocks all mutating operations (but not Gets)
// while it runs, matching the paper's "temporarily stalls updates"
// semantics. The handle's goroutine must not hold other table state.
func (h *Handle) Snapshot() ([]Entry, error) {
	t := h.t
	if !t.cfg.StrongSnapshots {
		return nil, ErrWrongMode
	}
	if t.cfg.SingleThread {
		return h.snapshotST(), nil
	}
	// Close the gate, then wait for in-flight updates to drain.
	for !t.snapshotGate.CompareAndSwap(0, 1) {
		runtime.Gosched() // another snapshot in progress
	}
	for t.updaters.Load() != 0 {
		runtime.Gosched()
	}
	var out []Entry
	h.Range(func(k, v uint64) bool {
		out = append(out, Entry{k, v})
		return true
	})
	t.snapshotGate.Store(0)
	return out, nil
}

func (h *Handle) snapshotST() []Entry {
	var out []Entry
	ix := h.t.current.Load()
	for b := uint64(0); b < ix.numBins; b++ {
		hdr := *ix.headerAddr(b)
		meta := *ix.linkMetaAddr(b)
		limit := slotLimit(meta)
		for i := 0; i < limit; i++ {
			if slotState(hdr, i) != slotValid {
				continue
			}
			kw := ix.slotKeyWord(b, meta, i)
			p := slotPair(kw)
			out = append(out, Entry{p[0], p[1]})
		}
	}
	return out
}

// Len counts live entries with a weak traversal. O(bins); intended for
// tests and tooling, not hot paths.
func (h *Handle) Len() int {
	n := 0
	h.Range(func(uint64, uint64) bool { n++; return true })
	return n
}
