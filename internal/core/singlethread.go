package core

// Single-thread mode (§3.4.5): when Config.SingleThread is set the table
// strips its three thread-safety overheads — lock-free CAS protocols become
// plain stores, atomic loads/stores become plain accesses, and the
// enter/leave index notifications disappear. The paper reports 31–91 %
// gains on InsDel-style workloads from exactly these removals.
//
// The structure and algorithms are deliberately identical to the concurrent
// path (the paper found specialized single-threaded algorithms gained
// nothing); only the memory operations are downgraded. Each operation has
// an *At variant taking the key's precomputed bin, so the windowed batch
// engine can reuse the hash computed during its prefetch stage; a bin that
// has been migrated (DoneTransfer) is recomputed against the next index.

func (h *Handle) stGet(key uint64) (uint64, bool) {
	ix := h.t.current.Load()
	return h.stGetAt(ix, key, h.t.binFor(ix, key))
}

func (h *Handle) stGetAt(ix *index, key uint64, b uint64) (uint64, bool) {
	t := h.t
	for {
		hdr := *ix.headerAddr(b)
		if binState(hdr) == binDoneTransfer {
			ix = ix.next.Load()
			b = t.binFor(ix, key)
			continue
		}
		meta := *ix.linkMetaAddr(b)
		limit := slotLimit(meta)
		for i := 0; i < limit; i++ {
			if slotState(hdr, i) != slotValid {
				continue
			}
			kw := ix.slotKeyWord(b, meta, i)
			p := slotPair(kw)
			if p[0] == key {
				return p[1], true
			}
		}
		return 0, false
	}
}

func (h *Handle) stInsert(key, val uint64, finalState uint64) (uint64, error) {
	ix := h.t.current.Load()
	return h.stInsertAt(ix, key, val, finalState, h.t.binFor(ix, key))
}

func (h *Handle) stInsertAt(ix *index, key, val uint64, finalState uint64, b uint64) (uint64, error) {
	t := h.t
	for {
		hdr := *ix.headerAddr(b)
		if binState(hdr) == binDoneTransfer {
			ix = ix.next.Load()
			b = t.binFor(ix, key)
			continue
		}
		meta := *ix.linkMetaAddr(b)
		limit := slotLimit(meta)
		for i := 0; i < limit; i++ {
			s := slotState(hdr, i)
			if s != slotValid && s != slotShadow {
				continue
			}
			kw := ix.slotKeyWord(b, meta, i)
			p := slotPair(kw)
			if p[0] == key {
				if s == slotShadow {
					return 0, ErrShadow
				}
				return p[1], ErrExists
			}
		}
		i := firstInvalidSlot(hdr, slotsPerBin)
		if i < 0 {
			nx, err := t.resizeOrFail(h, ix)
			if err != nil {
				return 0, err
			}
			ix = nx
			b = t.binFor(ix, key)
			continue
		}
		if need, field := slotNeedsChain(meta, i); need {
			newMeta, ok := t.stChain(ix, b, field)
			if !ok {
				nx, err := t.resizeOrFail(h, ix)
				if err != nil {
					return 0, err
				}
				ix = nx
				b = t.binFor(ix, key)
				continue
			}
			meta = newMeta
		}
		kw := ix.slotKeyWord(b, meta, i)
		p := slotPair(kw)
		p[0], p[1] = key, val
		// Both CASes of the concurrent Insert collapse into one store.
		*ix.headerAddr(b) = bumpVersion(withSlotState(hdr, i, finalState))
		if finalState == slotValid {
			t.bumpVer(key)
		}
		return 0, nil
	}
}

func (t *Table) stChain(ix *index, b uint64, field int) (uint64, bool) {
	metaAddr := ix.linkMetaAddr(b)
	meta := *metaAddr
	if field == 1 {
		n := ix.nextLink.Load()
		if n > ix.numLinks {
			return meta, false
		}
		ix.nextLink.Store(n + 1)
		meta = withLinkOne(meta, uint32(n))
	} else {
		n := ix.nextLink.Load()
		if n+1 > ix.numLinks {
			return meta, false
		}
		ix.nextLink.Store(n + 2)
		meta = withLinkTwo(meta, uint32(n))
	}
	*metaAddr = meta
	return meta, true
}

func (h *Handle) stDelete(key uint64) (uint64, bool) {
	ix := h.t.current.Load()
	return h.stDeleteAt(ix, key, h.t.binFor(ix, key))
}

func (h *Handle) stDeleteAt(ix *index, key uint64, b uint64) (uint64, bool) {
	t := h.t
	for {
		hdrAddr := ix.headerAddr(b)
		hdr := *hdrAddr
		if binState(hdr) == binDoneTransfer {
			ix = ix.next.Load()
			b = t.binFor(ix, key)
			continue
		}
		meta := *ix.linkMetaAddr(b)
		limit := slotLimit(meta)
		for i := 0; i < limit; i++ {
			if slotState(hdr, i) != slotValid {
				continue
			}
			kw := ix.slotKeyWord(b, meta, i)
			p := slotPair(kw)
			if p[0] == key {
				*hdrAddr = bumpVersion(withSlotState(hdr, i, slotInvalid))
				t.bumpVer(key)
				t.afterDelete(h, p[1])
				return p[1], true
			}
		}
		return 0, false
	}
}

func (h *Handle) stPut(key, val uint64) (uint64, bool) {
	ix := h.t.current.Load()
	return h.stPutAt(ix, key, val, h.t.binFor(ix, key))
}

func (h *Handle) stPutAt(ix *index, key, val uint64, b uint64) (uint64, bool) {
	t := h.t
	for {
		hdr := *ix.headerAddr(b)
		if binState(hdr) == binDoneTransfer {
			ix = ix.next.Load()
			b = t.binFor(ix, key)
			continue
		}
		meta := *ix.linkMetaAddr(b)
		limit := slotLimit(meta)
		for i := 0; i < limit; i++ {
			if slotState(hdr, i) != slotValid {
				continue
			}
			kw := ix.slotKeyWord(b, meta, i)
			p := slotPair(kw)
			if p[0] == key {
				old := p[1]
				p[1] = val // the dw-CAS collapses into a plain store
				t.bumpVer(key)
				return old, true
			}
		}
		return 0, false
	}
}

func (h *Handle) stCommitShadow(key uint64, commit bool) bool {
	ix := h.t.current.Load()
	return h.stCommitShadowAt(ix, key, commit, h.t.binFor(ix, key))
}

func (h *Handle) stCommitShadowAt(ix *index, key uint64, commit bool, b uint64) bool {
	t := h.t
	for {
		hdrAddr := ix.headerAddr(b)
		hdr := *hdrAddr
		if binState(hdr) == binDoneTransfer {
			ix = ix.next.Load()
			b = t.binFor(ix, key)
			continue
		}
		meta := *ix.linkMetaAddr(b)
		limit := slotLimit(meta)
		for i := 0; i < limit; i++ {
			if slotState(hdr, i) != slotShadow {
				continue
			}
			kw := ix.slotKeyWord(b, meta, i)
			p := slotPair(kw)
			if p[0] == key {
				target := slotValid
				if !commit {
					target = slotInvalid
				}
				*hdrAddr = bumpVersion(withSlotState(hdr, i, target))
				if commit {
					t.bumpVer(key)
				}
				return true
			}
		}
		return false
	}
}
