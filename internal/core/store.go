package core

import "errors"

// Store is the backend-independent DLHT surface: the synchronous op set
// plus the completion-driven pipelined surface (Pipe). It is implemented by
//
//   - the in-process table ((*Table).Store, a Handle adapter),
//   - the network client (repro/internal/server.Client), and
//   - the sharded client (repro/internal/cluster.Cluster),
//
// so workload drivers written against Store run unmodified whether the
// table is local, behind one socket, or consistent-hashed across N servers.
// The top-level dlht package re-exports Store together with constructors
// for all three backends.
//
// Like Handle and the network client, a Store is a per-goroutine object:
// open one per worker. Errors returned by remote backends map onto the
// same sentinels local tables return (ErrExists, ErrFull, ...), so
// errors.Is-based handling is backend-independent.
//
// The miss/err split mirrors the sync helpers everywhere: a plain miss
// (Get/Put/Delete on an absent key, Insert on a present one) is reported
// through the bool with a nil error; err is reserved for transport
// failures and table-level refusals (ErrFull, ErrWrongMode, ...).
type Store interface {
	// Get reads key; ok reports whether it was present.
	Get(key uint64) (val uint64, ok bool, err error)
	// Put overwrites an existing key and returns its previous value; ok is
	// false (with a nil error) when the key was absent.
	Put(key, val uint64) (prev uint64, ok bool, err error)
	// Insert adds a new key. A duplicate reports the existing value with
	// inserted=false and a nil error; other failures surface through err.
	Insert(key, val uint64) (existing uint64, inserted bool, err error)
	// Delete removes key and returns its previous value; ok is false when
	// the key was absent.
	Delete(key uint64) (prev uint64, ok bool, err error)
	// Pipe opens the completion-driven pipelined surface: enqueue requests
	// one at a time, receive in-order completions through opts.OnComplete.
	// While a Pipe is open the Store's synchronous methods must not be
	// called (the same exclusivity Handle demands while a Pipeline has
	// requests in flight).
	Pipe(opts PipeOpts) (Pipe, error)
	// Close releases the backend resources (table handle, connection(s)).
	Close() error
}

// Completion is the result of one pipelined Store request, the
// backend-independent form of a completed Op.
type Completion struct {
	Kind OpKind
	Key  uint64
	// Value carries the read value (Get), previous value (Put/Delete) or
	// existing value (duplicate Insert).
	Value uint64
	// OK reports per-kind success, as in Op.OK.
	OK bool
	// Err carries table-level failures (ErrExists, ErrFull, ...), mapped
	// onto the same sentinels for every backend. A plain miss is OK=false
	// with a nil Err.
	Err error
}

// PipeOpts configures Store.Pipe.
type PipeOpts struct {
	// Window bounds how many requests are in flight between enqueue and
	// completion. 0 selects the backend's default (the table's resolved
	// prefetch window locally, 16 for network clients). Remote backends
	// also use it to bound in-flight wire requests, so socket buffers can
	// never deadlock a deep enqueue run.
	Window int
	// OnComplete is invoked for every request as it completes. Completions
	// fire in enqueue order per backend shard: a single table or
	// connection preserves total enqueue order, a Cluster preserves it per
	// shard (and therefore per key). The Completion is valid only for the
	// duration of the call.
	OnComplete func(Completion)
}

// Pipe is the completion-driven pipelined surface of a Store — the
// backend-independent form of Handle.Pipeline. Enqueue methods may complete
// earlier requests inline (firing OnComplete) to hold the window bound;
// Flush completes everything still in flight.
type Pipe interface {
	Get(key uint64) error
	Put(key, val uint64) error
	Insert(key, val uint64) error
	Delete(key uint64) error
	// Flush completes every in-flight request, firing OnComplete for each.
	Flush() error
	// Close flushes the pipe and rejects further enqueues. The Store
	// remains usable.
	Close() error
}

// VersionReader is the optional Store extension behind cluster
// anti-entropy: a versioned read, pairing a key's value with its
// applied-mutation count (Handle.VersionOf). Backends whose table was
// built without Config.TrackVersions report ver==0 for every key.
// Implementations return a consistent (val, ok, ver) triple — the value
// observed is the one the version counts — up to the bounded-retry
// precision documented on verIndex.
type VersionReader interface {
	GetVer(key uint64) (val uint64, ok bool, ver uint64, err error)
}

// Scanner is the optional Store extension behind cluster resharding: the
// resumable weak-snapshot cursor of Handle.ScanStep. origBins==0 starts a
// cursor (the adopted geometry comes back in newOrigBins); subsequent
// calls thread newOrigBins/nextBin through. done reports exhaustion.
type Scanner interface {
	ScanStep(origBins, startBin uint64, maxEnts int) (ents []Entry, newOrigBins, nextBin uint64, done bool, err error)
}

// ---------------------------------------------------------------------------
// Local (in-process) Store
// ---------------------------------------------------------------------------

// Store returns this table as a Store, backed by a freshly acquired Handle.
// Close returns the handle (ids recycle, so per-worker Stores do not
// exhaust Config.MaxThreads). One Store per goroutine, like Handle.
func (t *Table) Store() (Store, error) {
	h, err := t.Handle()
	if err != nil {
		return nil, err
	}
	return &localStore{h: h}, nil
}

// MustStore is Store that panics on handle exhaustion.
func (t *Table) MustStore() Store {
	s, err := t.Store()
	if err != nil {
		panic(err)
	}
	return s
}

// localStore adapts a Handle to the Store surface. The err result of the
// sync methods is always nil locally — in-process tables have no transport
// to fail — except for Insert's table-level refusals, which surface the
// same sentinels remote backends map back onto.
type localStore struct {
	h *Handle
}

func (s *localStore) Get(key uint64) (uint64, bool, error) {
	v, ok := s.h.Get(key)
	return v, ok, nil
}

func (s *localStore) Put(key, val uint64) (uint64, bool, error) {
	prev, ok := s.h.Put(key, val)
	return prev, ok, nil
}

func (s *localStore) Insert(key, val uint64) (uint64, bool, error) {
	existing, err := s.h.Insert(key, val)
	if errors.Is(err, ErrExists) {
		return existing, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return 0, true, nil
}

func (s *localStore) Delete(key uint64) (uint64, bool, error) {
	prev, ok := s.h.Delete(key)
	return prev, ok, nil
}

// GetVer implements VersionReader. The Get is bracketed by two VersionOf
// reads; equal brackets mean no mutation committed between them, so the
// pair is consistent. A handful of retries rides out a write burst; the
// final attempt is returned unbracketed (anti-entropy tolerates a stale
// pair — the racing write re-journals or a later scrub pass converges it).
func (s *localStore) GetVer(key uint64) (uint64, bool, uint64, error) {
	var v uint64
	var ok bool
	ver := s.h.VersionOf(key)
	for i := 0; i < 4; i++ {
		v, ok = s.h.Get(key)
		after := s.h.VersionOf(key)
		if after == ver {
			break
		}
		ver = after
	}
	return v, ok, ver, nil
}

// ScanStep implements Scanner. Allocator-mode tables refuse: their value
// words are block refs that are meaningless outside the owning process.
func (s *localStore) ScanStep(origBins, startBin uint64, maxEnts int) ([]Entry, uint64, uint64, bool, error) {
	if s.h.t.cfg.Mode == Allocator {
		return nil, 0, 0, false, ErrWrongMode
	}
	ents, newOrig, next, done := s.h.ScanStep(origBins, startBin, maxEnts)
	return ents, newOrig, next, done, nil
}

func (s *localStore) Pipe(opts PipeOpts) (Pipe, error) {
	lp := &localPipe{}
	onc := opts.OnComplete
	pl := s.h.Pipeline(PipelineOpts{Window: opts.Window, OnComplete: func(op *Op) {
		if onc != nil {
			onc(Completion{Kind: op.Kind, Key: op.Key, Value: op.Result, OK: op.OK, Err: op.Err})
		}
	}})
	lp.pl = pl
	return lp, nil
}

func (s *localStore) Close() error {
	s.h.Close()
	return nil
}

// localPipe adapts a Pipeline to the Pipe surface; the error results exist
// for the interface and are always nil locally.
type localPipe struct {
	pl *Pipeline
}

func (p *localPipe) Get(key uint64) error         { p.pl.Get(key); return nil }
func (p *localPipe) Put(key, val uint64) error    { p.pl.Put(key, val); return nil }
func (p *localPipe) Insert(key, val uint64) error { p.pl.Insert(key, val); return nil }
func (p *localPipe) Delete(key uint64) error      { p.pl.Delete(key); return nil }
func (p *localPipe) Flush() error                 { p.pl.Flush(); return nil }
func (p *localPipe) Close() error                 { p.pl.Close(); return nil }
