package core

import (
	"errors"
	"testing"
)

func newST(t *testing.T, cfg Config) *Handle {
	t.Helper()
	cfg.SingleThread = true
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb.MustHandle()
}

func TestSTBasicOps(t *testing.T) {
	h := newST(t, Config{Bins: 64})
	if _, err := h.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if v, ok := h.Get(1); !ok || v != 10 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if old, ok := h.Put(1, 11); !ok || old != 10 {
		t.Fatalf("Put = (%d,%v)", old, ok)
	}
	if v, ok := h.Delete(1); !ok || v != 11 {
		t.Fatalf("Delete = (%d,%v)", v, ok)
	}
	if _, ok := h.Get(1); ok {
		t.Fatal("deleted key visible")
	}
}

func TestSTDuplicateInsert(t *testing.T) {
	h := newST(t, Config{Bins: 64})
	h.Insert(1, 10)
	if v, err := h.Insert(1, 99); !errors.Is(err, ErrExists) || v != 10 {
		t.Fatalf("dup insert = (%d,%v)", v, err)
	}
}

func TestSTChaining(t *testing.T) {
	h := newST(t, Config{Bins: 1, LinkRatio: 1})
	for i := uint64(0); i < slotsPerBin; i++ {
		if _, err := h.Insert(i, i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if _, err := h.Insert(99, 1); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	for i := uint64(0); i < slotsPerBin; i++ {
		if v, ok := h.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestSTResize(t *testing.T) {
	cfg := Config{Bins: 2, Resizable: true, ChunkBins: 1, SingleThread: true}
	tb := MustNew(cfg)
	h := tb.MustHandle()
	const n = 3000
	for i := uint64(0); i < n; i++ {
		if _, err := h.Insert(i, i^0xff); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tb.Stats().Resizes == 0 {
		t.Fatal("expected resizes")
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := h.Get(i); !ok || v != i^0xff {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestSTShadow(t *testing.T) {
	h := newST(t, Config{Bins: 64})
	h.InsertShadow(5, 50)
	if _, ok := h.Get(5); ok {
		t.Fatal("shadow visible")
	}
	if _, err := h.Insert(5, 51); !errors.Is(err, ErrShadow) {
		t.Fatalf("err = %v", err)
	}
	if !h.CommitShadow(5, true) {
		t.Fatal("commit")
	}
	if v, ok := h.Get(5); !ok || v != 50 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
}

func TestSTBatch(t *testing.T) {
	h := newST(t, Config{Bins: 64})
	ops := []Op{
		{Kind: OpInsert, Key: 1, Value: 1},
		{Kind: OpPut, Key: 1, Value: 2},
		{Kind: OpGet, Key: 1},
		{Kind: OpDelete, Key: 1},
	}
	if n := h.Exec(ops, true); n != 4 {
		t.Fatalf("executed %d", n)
	}
	if ops[2].Result != 2 {
		t.Fatalf("get = %d", ops[2].Result)
	}
}

func TestSTSnapshot(t *testing.T) {
	cfg := Config{Bins: 16, SingleThread: true, StrongSnapshots: true}
	tb := MustNew(cfg)
	h := tb.MustHandle()
	for i := uint64(0); i < 10; i++ {
		h.Insert(i, i)
	}
	snap, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 10 {
		t.Fatalf("snapshot = %d entries", len(snap))
	}
}

// A single-thread table may hand out several handles — the contract is
// single-goroutine use, not a single handle.
func TestSTMultipleHandlesSameGoroutine(t *testing.T) {
	tb := MustNew(Config{Bins: 16, SingleThread: true, MaxThreads: 8})
	h1 := tb.MustHandle()
	h2, err := tb.Handle()
	if err != nil {
		t.Fatalf("second handle: %v", err)
	}
	h1.Insert(1, 10)
	if v, ok := h2.Get(1); !ok || v != 10 {
		t.Fatalf("handles disagree: (%d,%v)", v, ok)
	}
}

// Equivalence: a long deterministic op sequence produces identical results
// in single-thread and concurrent modes.
func TestSTMatchesConcurrentSemantics(t *testing.T) {
	run := func(cfg Config) map[uint64]uint64 {
		tb := MustNew(cfg)
		h := tb.MustHandle()
		rng := xorshift(42)
		for i := 0; i < 20000; i++ {
			k := rng.next() % 256
			switch rng.next() % 4 {
			case 0:
				h.Insert(k, k+1)
			case 1:
				h.Delete(k)
			case 2:
				h.Put(k, k+2)
			default:
				h.Get(k)
			}
		}
		out := map[uint64]uint64{}
		h.Range(func(k, v uint64) bool { out[k] = v; return true })
		return out
	}
	st := run(Config{Bins: 8, Resizable: true, ChunkBins: 2, SingleThread: true})
	mt := run(Config{Bins: 8, Resizable: true, ChunkBins: 2})
	if len(st) != len(mt) {
		t.Fatalf("lens differ: %d vs %d", len(st), len(mt))
	}
	for k, v := range st {
		if mt[k] != v {
			t.Fatalf("key %d: %d vs %d", k, v, mt[k])
		}
	}
}
