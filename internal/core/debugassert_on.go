//go:build dlhtdebug

package core

import "sync/atomic"

// The dlhtdebug assertion layer: invariants the static passes
// (internal/analyzers) cannot see into, checked at runtime in debug
// builds and compiled out everywhere else. Call sites gate on the
// debugAsserts constant so release builds dead-code-eliminate them;
// CI runs the full suite under `go test -race -tags dlhtdebug ./...`.
const debugAsserts = true

// assertViewPinned panics when a KV value view is materialized without
// the epoch pin that keeps its block from being reclaimed under the
// reader. Only the configurations where enter() actually pins are
// checked (EpochGC + Resizable + !SingleThread); elsewhere views are
// protected by the table's no-reclaim contract instead.
func (h *Handle) assertViewPinned() {
	if h.eh != nil && h.t.cfg.Resizable && !h.t.cfg.SingleThread && !h.pinned {
		panic("dlhtdebug: KV value view materialized without an epoch pin")
	}
}

// assertBinChain panics when bin b's chain metadata is inconsistent: a
// link index out of the index's range, or a live slot beyond the
// chained slot limit. hdr is loaded before meta — writers publish the
// chain meta before marking a chained slot live, so a live slot seen
// in hdr implies the meta loaded after it is at least as new; loading
// in the other order would race a concurrent chain grow into a false
// positive.
func (t *Table) assertBinChain(ix *index, b uint64) {
	hdr := atomic.LoadUint64(ix.headerAddr(b))
	meta := atomic.LoadUint64(ix.linkMetaAddr(b))
	if l1 := uint64(linkOne(meta)); l1 > ix.numLinks {
		panic("dlhtdebug: bin linkOne index out of range")
	}
	if l2 := uint64(linkTwo(meta)); l2 != 0 && l2+1 > ix.numLinks {
		panic("dlhtdebug: bin linkTwo pair out of range")
	}
	limit := slotLimit(meta)
	for i := limit; i < slotsPerBin; i++ {
		if st := slotState(hdr, i); st == slotValid || st == slotShadow {
			panic("dlhtdebug: live slot beyond the bin's chained slot limit")
		}
	}
}
