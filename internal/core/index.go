package core

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/cpuops"
)

// wordsPerBucket is the 64-byte cache-line bucket expressed in 8-byte words.
const wordsPerBucket = 8

// Per-bucket word offsets in a primary bucket.
const (
	hdrWord  = 0 // bin header
	linkWord = 1 // link metadata
	// words 2..7: three 16-byte slots (key word, value word)
)

// index is one generation of the hashtable: the bin array, the link-bucket
// array, and the coordination state for migrating to the next generation.
// The Table swings an atomic pointer across index generations on resize.
type index struct {
	// bins holds numBins primary buckets, 8 words each, 64-byte aligned so
	// every bucket is one cache line and every slot is 16-byte aligned for
	// the double-word CAS.
	bins []uint64
	// links holds numLinks+2 link buckets (entry 0 burned so that link
	// index 0 can mean "not chained"; one extra tail bucket so a
	// double-bucket chain starting at the last index stays in bounds).
	links    []uint64
	numBins  uint64
	numLinks uint64

	// nextLink is the bump allocator for link buckets; starts at 1.
	nextLink atomic.Uint64
	// freeSingles and freePairs recycle link buckets whose chaining CAS
	// lost a race. Treiber stacks: head packs a 16-bit ABA tag above the
	// 32-bit bucket index; each free bucket stores the previous head word
	// in its first word.
	freeSingles atomic.Uint64
	freePairs   atomic.Uint64

	// Resize coordination (§3.2.5).
	state       atomic.Uint32         // one of idx* below
	next        atomic.Pointer[index] // the index being migrated into
	chunkCursor atomic.Uint64         // FAA ticket for transfer chunks
	chunksDone  atomic.Uint64         // completed chunk count
	numChunks   uint64
	chunkBins   uint64
}

// index lifecycle states.
const (
	idxNormal     uint32 = 0 // serving requests
	idxAllocating uint32 = 1 // a resizer is allocating the next index
	idxMigrating  uint32 = 2 // chunks are being transferred
	idxDrained    uint32 = 3 // fully transferred; table pointer moved on
	idxRetired    uint32 = 4 // quiescence reached; memory reclaimable
)

// newIndex allocates an index with the given geometry. linkRatio is the
// bins-to-link-buckets ratio (8 by default per §3.1); chunkBins is the
// transfer chunk size (16K bins in the paper).
func newIndex(numBins uint64, linkRatio int, chunkBins uint64) *index {
	if numBins == 0 {
		numBins = 1
	}
	if linkRatio <= 0 {
		linkRatio = 8
	}
	numLinks := numBins / uint64(linkRatio)
	if numLinks < 3 {
		// A fully chained bin needs 3 link buckets; never allocate fewer.
		numLinks = 3
	}
	if chunkBins == 0 {
		chunkBins = 16384
	}
	ix := &index{
		bins:      cpuops.AlignedUint64s(int(numBins)*wordsPerBucket, 64),
		links:     cpuops.AlignedUint64s(int(numLinks+2)*wordsPerBucket, 64),
		numBins:   numBins,
		numLinks:  numLinks,
		chunkBins: chunkBins,
		numChunks: (numBins + chunkBins - 1) / chunkBins,
	}
	ix.nextLink.Store(1)
	return ix
}

// headerAddr returns the header word of bin b.
func (ix *index) headerAddr(b uint64) *uint64 {
	return &ix.bins[b*wordsPerBucket+hdrWord]
}

// linkMetaAddr returns the link-metadata word of bin b.
func (ix *index) linkMetaAddr(b uint64) *uint64 {
	return &ix.bins[b*wordsPerBucket+linkWord]
}

// slotKeyWord returns the key-word address of the given slot of bin b under
// the chaining described by meta. The value word immediately follows it and
// the pair is 16-byte aligned, so slotPair can view it as a *[2]uint64 for
// the double-word CAS.
func (ix *index) slotKeyWord(b uint64, meta uint64, slot int) *uint64 {
	bucket, pos := bucketForSlot(meta, slot)
	if bucket < 0 {
		return &ix.bins[b*wordsPerBucket+2+uint64(pos)*2]
	}
	return &ix.links[uint64(bucket)*wordsPerBucket+uint64(pos)*2]
}

// slotPair reinterprets a key-word pointer as the 16-byte slot (key word,
// value word) for CompareAndSwap128.
func slotPair(kw *uint64) *[2]uint64 {
	return (*[2]uint64)(unsafe.Pointer(kw))
}

// loadSlot atomically reads the key and value words of a slot. The two
// loads are individually atomic; callers establish consistency through the
// header-version protocol.
func (ix *index) loadSlot(b uint64, meta uint64, slot int) (key, val uint64) {
	kw := ix.slotKeyWord(b, meta, slot)
	p := slotPair(kw)
	key = atomic.LoadUint64(&p[0])
	val = atomic.LoadUint64(&p[1])
	return
}

// storeSlot atomically writes the key and value words of a slot. Only valid
// while the slot is in TryInsert state (invisible to readers) or during a
// bin transfer (readers excluded by InTransfer).
func (ix *index) storeSlot(b uint64, meta uint64, slot int, key, val uint64) {
	kw := ix.slotKeyWord(b, meta, slot)
	p := slotPair(kw)
	atomic.StoreUint64(&p[0], key)
	atomic.StoreUint64(&p[1], val)
}

// ---------------------------------------------------------------------------
// Link-bucket allocation
// ---------------------------------------------------------------------------

// allocLinkSingle pops or bump-allocates one link bucket. Returns 0 when
// the link array is exhausted (resize trigger).
func (ix *index) allocLinkSingle() uint32 {
	if idx := ix.popLink(&ix.freeSingles); idx != 0 {
		return idx
	}
	n := ix.nextLink.Add(1) - 1
	if n > ix.numLinks {
		return 0
	}
	return uint32(n)
}

// allocLinkPair pops or bump-allocates two consecutive link buckets,
// returning the index of the first, or 0 on exhaustion.
func (ix *index) allocLinkPair() uint32 {
	if idx := ix.popLink(&ix.freePairs); idx != 0 {
		return idx
	}
	n := ix.nextLink.Add(2) - 2
	if n+1 > ix.numLinks {
		return 0
	}
	return uint32(n)
}

// recycleLinkSingle and recycleLinkPair push buckets that lost a chaining
// race back onto the free stacks so they are not leaked.
func (ix *index) recycleLinkSingle(idx uint32) { ix.pushLink(&ix.freeSingles, idx) }
func (ix *index) recycleLinkPair(idx uint32)   { ix.pushLink(&ix.freePairs, idx) }

func (ix *index) pushLink(head *atomic.Uint64, idx uint32) {
	nextWord := &ix.links[uint64(idx)*wordsPerBucket]
	for {
		old := head.Load()
		tag := uint16(old >> 48)
		// Store the entire old head word (tag included) as the node's next
		// pointer; pop re-tags when it installs it.
		atomic.StoreUint64(nextWord, old)
		if head.CompareAndSwap(old, uint64(tag+1)<<48|uint64(idx)) {
			return
		}
	}
}

func (ix *index) popLink(head *atomic.Uint64) uint32 {
	for {
		old := head.Load()
		idx := uint32(old & 0xffffffff)
		if idx == 0 {
			return 0
		}
		next := atomic.LoadUint64(&ix.links[uint64(idx)*wordsPerBucket])
		tag := uint16(old >> 48)
		newHead := uint64(tag+1)<<48 | next&0xffffffff
		if head.CompareAndSwap(old, newHead) {
			// Scrub the next word so the bucket starts clean when reused.
			atomic.StoreUint64(&ix.links[uint64(idx)*wordsPerBucket], 0)
			return idx
		}
	}
}

// ---------------------------------------------------------------------------
// Occupancy probe (§5.1.5)
// ---------------------------------------------------------------------------

// occupancy returns the fraction of occupied (Valid or Shadow) slots over
// the total slot capacity of the index, counting every bin's full 15-slot
// capacity only for the buckets it has actually chained — matching the
// paper's definition of "occupied to total slots before a resize".
func (ix *index) occupancy() (occupied, capacity uint64) {
	for b := uint64(0); b < ix.numBins; b++ {
		hdr := atomic.LoadUint64(ix.headerAddr(b))
		meta := atomic.LoadUint64(ix.linkMetaAddr(b))
		limit := slotLimit(meta)
		occupied += uint64(countSlotsInState(hdr, slotValid, limit))
		occupied += uint64(countSlotsInState(hdr, slotShadow, limit))
	}
	// Total capacity counts all primary slots plus every link bucket slot,
	// whether or not chained yet: the index cannot hold more than this.
	capacity = ix.numBins*primarySlots + ix.numLinks*4
	return occupied, capacity
}
