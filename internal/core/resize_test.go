package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestResizeGrowsAndPreservesAllKeys(t *testing.T) {
	tb := MustNew(Config{Bins: 4, Resizable: true, ChunkBins: 2})
	h := tb.MustHandle()
	const n = 5000
	for i := uint64(0); i < n; i++ {
		if _, err := h.Insert(i, i*3); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tb.Stats().Resizes == 0 {
		t.Fatal("expected at least one resize")
	}
	if tb.NumBins() <= 4 {
		t.Fatalf("bins = %d, expected growth", tb.NumBins())
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := h.Get(i); !ok || v != i*3 {
			t.Fatalf("after resize Get(%d) = (%d,%v), want (%d,true)", i, v, ok, i*3)
		}
	}
}

func TestResizePreservesDeletesAndPuts(t *testing.T) {
	tb := MustNew(Config{Bins: 4, Resizable: true, ChunkBins: 2})
	h := tb.MustHandle()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		h.Insert(i, i)
	}
	for i := uint64(0); i < n; i += 2 {
		if _, ok := h.Delete(i); !ok {
			t.Fatalf("delete %d", i)
		}
	}
	for i := uint64(1); i < n; i += 2 {
		if _, ok := h.Put(i, i+1000000); !ok {
			t.Fatalf("put %d", i)
		}
	}
	// Force more growth after the mutations.
	for i := uint64(n); i < 3*n; i++ {
		h.Insert(i, i)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := h.Get(i)
		if i%2 == 0 {
			if ok {
				t.Fatalf("deleted key %d reappeared after resize", i)
			}
		} else if !ok || v != i+1000000 {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestResizePreservesShadowEntries(t *testing.T) {
	tb := MustNew(Config{Bins: 4, Resizable: true, ChunkBins: 2})
	h := tb.MustHandle()
	h.InsertShadow(12345, 999)
	// Trigger growth.
	for i := uint64(0); i < 2000; i++ {
		h.Insert(i, i)
	}
	if tb.Stats().Resizes == 0 {
		t.Fatal("expected a resize")
	}
	if _, ok := h.Get(12345); ok {
		t.Fatal("shadow key became visible across resize")
	}
	if !h.CommitShadow(12345, true) {
		t.Fatal("shadow entry lost during migration")
	}
	if v, ok := h.Get(12345); !ok || v != 999 {
		t.Fatalf("Get after commit = (%d,%v)", v, ok)
	}
}

// The paper's Figure 8 scenario: Gets proceed while the index migrates.
func TestConcurrentGetsDuringResize(t *testing.T) {
	tb := MustNew(Config{Bins: 64, Resizable: true, ChunkBins: 16, MaxThreads: 16})
	loader := tb.MustHandle()
	const prepop = 2000
	for i := uint64(0); i < prepop; i++ {
		loader.Insert(i, i*7)
	}
	var stop atomic.Bool
	var wrong atomic.Int64
	var wg sync.WaitGroup
	readers := 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := tb.MustHandle()
			x := seed*2654435761 + 1
			for !stop.Load() {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				k := x % prepop
				if v, ok := h.Get(k); !ok || v != k*7 {
					wrong.Add(1)
				}
			}
		}(uint64(r + 1))
	}
	// Writer drives repeated resizes.
	for i := uint64(prepop); i < prepop+30000; i++ {
		loader.Insert(i, i*7)
	}
	stop.Store(true)
	wg.Wait()
	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d inconsistent Gets during resize", w)
	}
	if tb.Stats().Resizes == 0 {
		t.Fatal("no resize happened; test did not exercise migration")
	}
}

// Multiple writers slam Inserts so several threads hit the full index at
// once and must collaborate as helpers (§3.2.5 Collaboration).
func TestParallelResizeHelpers(t *testing.T) {
	tb := MustNew(Config{Bins: 8, Resizable: true, ChunkBins: 1, MaxThreads: 16})
	const writers = 8
	const perWriter = 4000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			h := tb.MustHandle()
			for i := uint64(0); i < perWriter; i++ {
				k := base*perWriter + i
				if _, err := h.Insert(k, k+1); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	h := tb.MustHandle()
	for w := uint64(0); w < writers; w++ {
		for i := uint64(0); i < perWriter; i++ {
			k := w*perWriter + i
			if v, ok := h.Get(k); !ok || v != k+1 {
				t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
			}
		}
	}
	s := tb.Stats()
	if s.Resizes == 0 {
		t.Fatal("expected resizes")
	}
	t.Logf("resizes=%d helpers=%d chunks=%d keysMoved=%d bins=%d",
		s.Resizes, s.ResizeHelpers, s.ChunksMoved, s.KeysMoved, s.Bins)
}

// Puts racing the migration: every Put must either land in the old slot
// before its transfer or be retried into the new index — no lost updates.
func TestPutsRacingResize(t *testing.T) {
	tb := MustNew(Config{Bins: 16, Resizable: true, ChunkBins: 4, MaxThreads: 8})
	loader := tb.MustHandle()
	const keys = 512
	for i := uint64(0); i < keys; i++ {
		loader.Insert(i, 0)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	// Each putter owns a disjoint key range and increments values; the final
	// value must equal its counter.
	putters := 4
	finals := make([]uint64, keys)
	var mu sync.Mutex
	for p := 0; p < putters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := tb.MustHandle()
			lo := uint64(p) * keys / uint64(putters)
			hi := (uint64(p) + 1) * keys / uint64(putters)
			counts := make(map[uint64]uint64)
			for !stop.Load() {
				for k := lo; k < hi; k++ {
					counts[k]++
					if _, ok := h.Put(k, counts[k]); !ok {
						t.Errorf("Put(%d) lost the key", k)
						return
					}
				}
			}
			mu.Lock()
			for k, c := range counts {
				finals[k] = c
			}
			mu.Unlock()
		}(p)
	}
	// Drive repeated growth with inserts.
	for i := uint64(keys); i < keys+20000; i++ {
		loader.Insert(i, 1)
	}
	stop.Store(true)
	wg.Wait()
	h := tb.MustHandle()
	for k := uint64(0); k < keys; k++ {
		v, ok := h.Get(k)
		if !ok {
			t.Fatalf("key %d vanished", k)
		}
		if v != finals[k] {
			t.Fatalf("key %d = %d, want %d (lost update across transfer)", k, v, finals[k])
		}
	}
	if tb.Stats().Resizes == 0 {
		t.Fatal("no resize exercised")
	}
}

func TestOldIndexRetirement(t *testing.T) {
	tb := MustNew(Config{Bins: 4, Resizable: true, ChunkBins: 2})
	h := tb.MustHandle()
	first := tb.current.Load()
	for i := uint64(0); i < 200; i++ {
		h.Insert(i, i)
	}
	if tb.current.Load() == first {
		t.Fatal("index pointer did not move")
	}
	// The retirement goroutine must observe quiescence promptly.
	done := make(chan struct{})
	go func() {
		first.waitRetired()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("old index never retired")
	}
}

func TestResizeDisabledNeverResizes(t *testing.T) {
	tb := MustNew(Config{Bins: 4})
	h := tb.MustHandle()
	var sawFull bool
	for i := uint64(0); i < 10000; i++ {
		if _, err := h.Insert(i, i); err != nil {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("non-resizable table absorbed 10000 keys into 4 bins")
	}
	if tb.Stats().Resizes != 0 {
		t.Fatal("resize happened despite Resizable=false")
	}
}

func TestNestedResizes(t *testing.T) {
	// Tiny chunk and tiny index force many back-to-back resizes; with the
	// ×8 then ×4 growth factors a few thousand keys cross several
	// generations.
	tb := MustNew(Config{Bins: 1, Resizable: true, ChunkBins: 1, LinkRatio: 1, MaxThreads: 8})
	var wg sync.WaitGroup
	const writers = 4
	const perWriter = 3000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			h := tb.MustHandle()
			for i := uint64(0); i < perWriter; i++ {
				k := base*perWriter + i
				if _, err := h.Insert(k, ^k); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	h := tb.MustHandle()
	for k := uint64(0); k < writers*perWriter; k++ {
		if v, ok := h.Get(k); !ok || v != ^k {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	if tb.Stats().Resizes < 2 {
		t.Fatalf("resizes = %d, want several", tb.Stats().Resizes)
	}
}

func TestResizeWithGOMAXPROCS1(t *testing.T) {
	// Cooperative progress must not rely on parallelism.
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	tb := MustNew(Config{Bins: 2, Resizable: true, ChunkBins: 1})
	h := tb.MustHandle()
	for i := uint64(0); i < 1000; i++ {
		if _, err := h.Insert(i, i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 1000; i++ {
		if _, ok := h.Get(i); !ok {
			t.Fatalf("lost key %d", i)
		}
	}
}
