package core

import (
	"errors"
	"unsafe"

	"repro/internal/cpuops"
)

//dlht:hotpath
// Allocator-mode pipelining: the two-level prefetch engine behind
// GetKVBatch and the streaming KVPipeline. "Unlike MICA, our pointer-based
// API also allows us to prefetch the externally stored values in Allocator
// mode" (§3.3): the bin-header prefetch runs a full window ahead of
// completion, the slot lookup — which prefetches the hit's out-of-line
// block — runs half a window ahead, and the value views materialize last,
// once their block headers are cached. Request order is preserved.

// kvPipeEntry is one in-flight request of the KV engine: the hash
// coordinates memoized at issue time (kw, code, bin, and the index they
// were computed against) plus the located slot's value word from the
// lookup stage.
type kvPipeEntry struct {
	req  *KVGet
	ix   *index
	bin  uint64
	kw   uint64
	vw   uint64
	code int
	ok   bool
}

// kvPipe is the two-stage sliding-window engine shared by GetKVBatch and
// KVPipeline. Three absolute cursors chase each other through a
// power-of-two ring: head (issue = hash + bin prefetch), s2 (lookup = slot
// scan + block prefetch) and tail (completion = value view).
type kvPipe struct {
	ring []kvPipeEntry
	mask int
	head int
	s2   int
	tail int
}

// sizePipe (re)initializes the ring for a window of w in-flight entries.
func (p *kvPipe) sizePipe(w int) {
	p.head, p.s2, p.tail = 0, 0, 0
	if len(p.ring) > w {
		return
	}
	c := 8
	for c <= w {
		c <<= 1
	}
	p.ring = make([]kvPipeEntry, c)
	p.mask = c - 1
}

// grow doubles the ring, preserving in-flight entries.
func (p *kvPipe) grow() {
	old := p.ring
	oldMask := p.mask
	next := make([]kvPipeEntry, len(old)*2)
	p.mask = len(next) - 1
	for i := p.tail; i < p.head; i++ {
		next[i&p.mask] = old[i&oldMask]
	}
	p.ring = next
}

// issue is stage 1: hash the key, memoize its coordinates against ix, and
// prefetch the bin header.
func (p *kvPipe) issue(t *Table, ix *index, req *KVGet) {
	p.issueHashed(t, ix, req, t.HashOfKV(req.NS, req.Key))
}

// issueHashed is issue with the key's hash — Table.HashOfKV — precomputed
// by the caller.
func (p *kvPipe) issueHashed(t *Table, ix *index, req *KVGet, hash uint64) {
	if p.head-p.tail == len(p.ring) {
		p.grow()
	}
	e := &p.ring[p.head&p.mask]
	e.req = req
	e.ix = ix
	e.kw = inlineKeyWord(req.Key)
	e.code = keyCodeFor(req.Key)
	e.bin = hash % ix.numBins
	p.head++
	cpuops.PrefetchUint64(ix.headerAddr(e.bin))
}

// locate is stage 2: scan the (now cached) bin for the slot and prefetch
// the hit's out-of-line block.
func (t *Table) locate(e *kvPipeEntry) {
	e.vw, e.ok = t.lookupKVSlotAt(e.ix, e.req.NS, e.req.Key, e.kw, e.code, e.bin)
	if e.ok {
		blk := t.cfg.Alloc.Bytes(refOf(e.vw), 1)
		cpuops.Prefetch(unsafe.Pointer(&blk[0]))
	}
}

// advance runs the lookup stage toward its steady-state position: trailing
// the bin prefetch by half a window and leading completion by the other
// half, splitting the in-flight budget between the two prefetch levels.
func (p *kvPipe) advance(t *Table, w, lead int) {
	for p.s2 < p.head && (p.head-p.s2 > w-lead || p.s2 < p.tail+lead) {
		t.locate(&p.ring[p.s2&p.mask])
		p.s2++
	}
}

// kvStep completes the oldest in-flight request: materialize the value
// view (block header now cached) into the caller's KVGet and return it.
func (h *Handle) kvStep(p *kvPipe) *KVGet {
	t := h.t
	if p.s2 == p.tail {
		t.locate(&p.ring[p.tail&p.mask])
		p.s2++
	}
	e := p.ring[p.tail&p.mask]
	p.tail++
	e.req.OK = e.ok
	if e.ok {
		if debugAsserts {
			h.assertViewPinned()
		}
		e.req.Value = t.valueView(e.vw)
	} else {
		e.req.Value = nil
	}
	return e.req
}

// kvExecPipe returns the handle's GetKVBatch engine state sized for w.
func (h *Handle) kvExecPipe(w int) *kvPipe {
	if h.kvp == nil {
		h.kvp = new(kvPipe)
	}
	h.kvp.sizePipe(w)
	return h.kvp
}

// kvLead splits window w between the two prefetch stages.
func kvLead(w int) int { return (w + 1) / 2 }

// ---------------------------------------------------------------------------
// Public streaming surface
// ---------------------------------------------------------------------------

// KVPipelineOpts configures a KVPipeline.
type KVPipelineOpts struct {
	// Window bounds how many lookups are in flight between enqueue and
	// completion. 0 selects the table's resolved prefetch window
	// (Config.PrefetchWindow, default 16); other values are clamped to at
	// least 1.
	Window int
	// OnComplete is invoked for every lookup, in enqueue order, as it
	// completes. The *KVGet (and its Value view) follows the same lifetime
	// rules as GetKV; the pointer itself is valid only for the duration of
	// the call. OnComplete may enqueue further lookups into the same
	// pipeline; calling Flush or Close from inside it is a no-op.
	OnComplete func(*KVGet)
}

// KVPipeline is the Allocator-mode streaming form of GetKVBatch: lookups
// enter one at a time through Get, each issuing its bin prefetch
// immediately, and complete — firing OnComplete with the value view — once
// a full window of newer lookups is behind them, with the out-of-line
// block prefetch running at half-window distance in between. Completions
// preserve enqueue order. Like Pipeline, it borrows its Handle and
// inherits its single-goroutine contract.
type KVPipeline struct {
	h          *Handle
	p          kvPipe
	buf        []KVGet // value slots backing in-flight lookups, ring-aligned
	w          int
	lead       int
	onComplete func(*KVGet)
	draining   bool
	closed     bool
}

// KVPipeline creates a streaming lookup pipeline over h. The table must be
// in Allocator mode.
func (h *Handle) KVPipeline(opts KVPipelineOpts) *KVPipeline {
	if h.t.cfg.Mode != Allocator {
		panic(ErrWrongMode)
	}
	w := opts.Window
	if w == 0 {
		if w = h.t.cfg.PrefetchWindow; w <= 0 {
			w = defaultPrefetchWindow
		}
	}
	if w < 1 {
		w = 1
	}
	pl := &KVPipeline{h: h, w: w, lead: kvLead(w), onComplete: opts.OnComplete}
	pl.p.sizePipe(w)
	pl.buf = make([]KVGet, len(pl.p.ring))
	return pl
}

// Window returns the pipeline's resolved completion window.
func (pl *KVPipeline) Window() int { return pl.w }

// InFlight returns the number of enqueued lookups not yet completed.
func (pl *KVPipeline) InFlight() int { return pl.p.head - pl.p.tail }

// Get enqueues a lookup of key in namespace ns. The key bytes must stay
// valid until the lookup completes.
func (pl *KVPipeline) Get(ns uint16, key []byte) {
	pl.GetHashed(ns, key, pl.h.t.HashOfKV(ns, key))
}

// GetHashed is Get with the key's hash — as returned by Table.HashOfKV —
// precomputed by the caller, so routers that already hashed the key for
// shard selection don't hash it a second time for the bin mapping. A
// resize redirect still recomputes the bin from the key.
func (pl *KVPipeline) GetHashed(ns uint16, key []byte, hash uint64) {
	if pl.closed {
		panic("dlht: KVPipeline used after Close")
	}
	p := &pl.p
	if p.head-p.tail == len(p.ring) {
		pl.p.grow()
		pl.buf = make([]KVGet, len(pl.p.ring))
	}
	slot := &pl.buf[p.head&p.mask]
	*slot = KVGet{NS: ns, Key: key}
	t := pl.h.t
	p.issueHashed(t, t.current.Load(), slot, hash)
	if !pl.draining {
		pl.drainTo(pl.w)
	}
}

// drainTo completes in-flight lookups, oldest first, until at most limit
// remain, keeping the lookup stage at its lead in between.
func (pl *KVPipeline) drainTo(limit int) {
	if pl.draining {
		return
	}
	h := pl.h
	t := h.t
	pl.draining = true
	announced := false
	for pl.p.head-pl.p.tail > limit || pl.p.head-pl.p.s2 > pl.w-pl.lead {
		if !announced && t.cfg.Resizable && !t.cfg.SingleThread {
			h.enter()
			announced = true
		}
		pl.p.advance(t, pl.w, pl.lead)
		if pl.p.head-pl.p.tail <= limit {
			break
		}
		req := h.kvStep(&pl.p)
		if pl.onComplete != nil {
			pl.onComplete(req)
		}
	}
	if announced {
		h.leave()
	}
	pl.draining = false
}

// Flush completes every in-flight lookup, firing OnComplete for each.
func (pl *KVPipeline) Flush() { pl.drainTo(0) }

// Mutations on the pipeline: each flushes the in-flight lookups first —
// a mutation is a barrier, ordered after every enqueued read — and then
// applies the corresponding Handle KV operation. The Hashed forms take the
// key's Table.HashOfKV, so a router that hashed the key once for shard
// selection reuses it for the bin mapping instead of rehashing (the
// partitioned executor's KV write path). Mutations must not be called from
// inside OnComplete.

// Insert enqueue-barriers the pipeline and inserts key→val; see
// Handle.InsertKV for semantics.
func (pl *KVPipeline) Insert(ns uint16, key, val []byte) error {
	return pl.InsertHashed(ns, key, val, pl.h.t.HashOfKV(ns, key))
}

// InsertHashed is Insert with the key's hash precomputed.
func (pl *KVPipeline) InsertHashed(ns uint16, key, val []byte, hash uint64) error {
	if pl.closed {
		panic("dlht: KVPipeline used after Close")
	}
	pl.drainTo(0)
	return pl.h.InsertKVHashed(ns, key, val, hash)
}

// Delete enqueue-barriers the pipeline and deletes key; see
// Handle.DeleteKV for semantics.
func (pl *KVPipeline) Delete(ns uint16, key []byte) bool {
	return pl.DeleteHashed(ns, key, pl.h.t.HashOfKV(ns, key))
}

// DeleteHashed is Delete with the key's hash precomputed.
func (pl *KVPipeline) DeleteHashed(ns uint16, key []byte, hash uint64) bool {
	if pl.closed {
		panic("dlht: KVPipeline used after Close")
	}
	pl.drainTo(0)
	return pl.h.DeleteKVHashed(ns, key, hash)
}

// Put upserts: an existing pair is replaced, an absent key inserted.
func (pl *KVPipeline) Put(ns uint16, key, val []byte) error {
	return pl.PutHashed(ns, key, val, pl.h.t.HashOfKV(ns, key))
}

// PutHashed is Put with the key's hash precomputed. Replace is
// delete-then-insert, retried if a concurrent inserter wins the race, so
// the final state is always this call's value or a later writer's — never
// a lost update that leaves the key absent.
func (pl *KVPipeline) PutHashed(ns uint16, key, val []byte, hash uint64) error {
	if pl.closed {
		panic("dlht: KVPipeline used after Close")
	}
	pl.drainTo(0)
	h := pl.h
	for {
		err := h.InsertKVHashed(ns, key, val, hash)
		if err == nil || !errors.Is(err, ErrExists) {
			return err
		}
		h.DeleteKVHashed(ns, key, hash)
	}
}

// Close flushes the pipeline and rejects further enqueues. The Handle
// remains usable. Calling Close from inside OnComplete is a no-op, like
// Flush: the pipeline stays open and keeps completing.
func (pl *KVPipeline) Close() {
	if pl.closed || pl.draining {
		return
	}
	pl.Flush()
	pl.closed = true
}
