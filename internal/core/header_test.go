package core

import (
	"testing"
	"testing/quick"

	"repro/internal/alloc"
)

func TestSlotStateRoundTrip(t *testing.T) {
	f := func(hdr uint64, slot uint8, state uint8) bool {
		i := int(slot) % slotsPerBin
		s := uint64(state) & 3
		got := withSlotState(hdr, i, s)
		if slotState(got, i) != s {
			return false
		}
		// Other slots, the bin state and the version must be untouched.
		for j := 0; j < slotsPerBin; j++ {
			if j != i && slotState(got, j) != slotState(hdr, j) {
				return false
			}
		}
		return binState(got) == binState(hdr) && version(got) == version(hdr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinStateRoundTrip(t *testing.T) {
	f := func(hdr uint64, state uint8) bool {
		s := uint64(state) & 3
		got := withBinState(hdr, s)
		if binState(got) != s {
			return false
		}
		for j := 0; j < slotsPerBin; j++ {
			if slotState(got, j) != slotState(hdr, j) {
				return false
			}
		}
		return version(got) == version(hdr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBumpVersion(t *testing.T) {
	f := func(hdr uint64) bool {
		got := bumpVersion(hdr)
		if version(got) != version(hdr)+1 {
			return false
		}
		return got&lowerMask == hdr&lowerMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Wraparound.
	hdr := uint64(0xFFFFFFFF) << versionShift
	if version(bumpVersion(hdr)) != 0 {
		t.Error("version must wrap at 2^32")
	}
}

func TestFirstInvalidSlot(t *testing.T) {
	// All invalid.
	if got := firstInvalidSlot(0, slotsPerBin); got != 0 {
		t.Errorf("empty header: got %d, want 0", got)
	}
	// Slot 0 valid -> 1.
	hdr := withSlotState(0, 0, slotValid)
	if got := firstInvalidSlot(hdr, slotsPerBin); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
	// Everything occupied -> -1.
	hdr = 0
	for i := 0; i < slotsPerBin; i++ {
		hdr = withSlotState(hdr, i, slotValid)
	}
	if got := firstInvalidSlot(hdr, slotsPerBin); got != -1 {
		t.Errorf("full bin: got %d, want -1", got)
	}
	// TryInsert and Shadow also count as occupied.
	hdr = withSlotState(0, 0, slotTryInsert)
	hdr = withSlotState(hdr, 1, slotShadow)
	if got := firstInvalidSlot(hdr, slotsPerBin); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
	// limit restricts the search.
	if got := firstInvalidSlot(hdr, 2); got != -1 {
		t.Errorf("limited search: got %d, want -1", got)
	}
}

func TestCountSlotsInState(t *testing.T) {
	hdr := uint64(0)
	for i := 0; i < 5; i++ {
		hdr = withSlotState(hdr, i, slotValid)
	}
	hdr = withSlotState(hdr, 7, slotShadow)
	if n := countSlotsInState(hdr, slotValid, slotsPerBin); n != 5 {
		t.Errorf("valid count = %d, want 5", n)
	}
	if n := countSlotsInState(hdr, slotShadow, slotsPerBin); n != 1 {
		t.Errorf("shadow count = %d, want 1", n)
	}
	if n := countSlotsInState(hdr, slotInvalid, slotsPerBin); n != 9 {
		t.Errorf("invalid count = %d, want 9", n)
	}
}

func TestLinkMetaRoundTrip(t *testing.T) {
	f := func(meta uint64, one, two uint32) bool {
		m1 := withLinkOne(meta, one)
		if linkOne(m1) != one || linkTwo(m1) != linkTwo(meta) {
			return false
		}
		m2 := withLinkTwo(m1, two)
		return linkOne(m2) == one && linkTwo(m2) == two
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlotLimit(t *testing.T) {
	if slotLimit(0) != primarySlots {
		t.Error("unchained bin must expose 3 slots")
	}
	if slotLimit(withLinkOne(0, 5)) != 7 {
		t.Error("single link must expose 7 slots")
	}
	if slotLimit(withLinkTwo(0, 9)) != slotsPerBin {
		t.Error("double link must expose 15 slots")
	}
	if slotLimit(withLinkTwo(withLinkOne(0, 5), 9)) != slotsPerBin {
		t.Error("full chain must expose 15 slots")
	}
}

func TestBucketForSlot(t *testing.T) {
	meta := withLinkTwo(withLinkOne(0, 10), 20)
	cases := []struct {
		slot   int
		bucket int64
		pos    int
	}{
		{0, -1, 0}, {1, -1, 1}, {2, -1, 2},
		{3, 10, 0}, {4, 10, 1}, {6, 10, 3},
		{7, 20, 0}, {10, 20, 3},
		{11, 21, 0}, {14, 21, 3},
	}
	for _, c := range cases {
		b, p := bucketForSlot(meta, c.slot)
		if b != c.bucket || p != c.pos {
			t.Errorf("slot %d: got (%d,%d), want (%d,%d)", c.slot, b, p, c.bucket, c.pos)
		}
	}
}

func TestSlotNeedsChain(t *testing.T) {
	for slot := 0; slot < primarySlots; slot++ {
		if need, _ := slotNeedsChain(0, slot); need {
			t.Errorf("primary slot %d must not need chaining", slot)
		}
	}
	if need, field := slotNeedsChain(0, 3); !need || field != 1 {
		t.Error("slot 3 on unchained bin must need field 1")
	}
	if need, field := slotNeedsChain(0, 7); !need || field != 2 {
		t.Error("slot 7 on unchained bin must need field 2")
	}
	meta := withLinkOne(0, 4)
	if need, _ := slotNeedsChain(meta, 4); need {
		t.Error("slot 4 with link-1 chained must not need chaining")
	}
	if need, field := slotNeedsChain(meta, 12); !need || field != 2 {
		t.Error("slot 12 with only link-1 must need field 2")
	}
}

func TestTransferKeyFor(t *testing.T) {
	if transferKeyFor(0) != TransferKeyEven || transferKeyFor(2) != TransferKeyEven {
		t.Error("even bins must use the even transfer key")
	}
	if transferKeyFor(1) != TransferKeyOdd || transferKeyFor(7) != TransferKeyOdd {
		t.Error("odd bins must use the odd transfer key")
	}
	if !isReserved(TransferKeyEven) || !isReserved(TransferKeyOdd) {
		t.Error("transfer keys must be reserved")
	}
	if isReserved(0) || isReserved(12345) {
		t.Error("ordinary keys must not be reserved")
	}
}

func TestGrowthFactor(t *testing.T) {
	cases := []struct {
		bins, want uint64
	}{
		{16, 8}, {4095, 8}, {4096, 4}, {1 << 20, 4}, {64 << 20, 2}, {1 << 30, 2},
	}
	for _, c := range cases {
		if got := growthFactor(c.bins); got != c.want {
			t.Errorf("growthFactor(%d) = %d, want %d", c.bins, got, c.want)
		}
	}
}

func TestKVEncodingRoundTrip(t *testing.T) {
	f := func(refBits uint64, code uint8, ns uint16) bool {
		ref := refBits & ((1 << 48) - 1)
		c := int(code) & 0xf
		n := ns & nsMask
		v := encodeSlotVal(alloc.Ref(ref), c, n)
		return uint64(refOf(v)) == ref && keyCodeOf(v) == c && nsOf(v) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInlineKeyWord(t *testing.T) {
	if inlineKeyWord([]byte{0x01}) != 0x01 {
		t.Error("single byte")
	}
	if inlineKeyWord([]byte{0x01, 0x02}) != 0x0201 {
		t.Error("little-endian order")
	}
	full := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if inlineKeyWord(full) != 0x0807060504030201 {
		t.Error("8-byte key")
	}
	// Longer keys use only the first 8 bytes.
	long := append(append([]byte{}, full...), 9, 10)
	if inlineKeyWord(long) != inlineKeyWord(full) {
		t.Error("filter word must use first 8 bytes")
	}
	if keyCodeFor(long) != bigKeyCode || keyCodeFor(full) != 8 || keyCodeFor([]byte{1}) != 1 {
		t.Error("key codes")
	}
}
