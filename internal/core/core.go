package core
