package core

import (
	"runtime"
	"sync/atomic"
)

// Scan results for scanBin.
const (
	scanMiss  = -1 // key not in the bin (validated)
	scanRetry = -2 // header moved during the scan; caller must retry
)

// scanBin runs the Get algorithm's linear search (§3.2.1) over bin b of ix
// under the header snapshot hdr. It returns the slot holding key together
// with its value word and slot state, or scanMiss/scanRetry. skipSlot
// excludes a slot the caller owns in TryInsert state; includeShadow makes
// Shadow slots visible (they are hidden from normal Gets/Puts/Deletes).
//
// Consistency: the final header reload validates every key/value read made
// under hdr — any concurrent Insert/Delete/transfer bumps the version and
// forces scanRetry. Puts do not bump the version, but they replace only the
// value word of a slot whose key word is unchanged, so a value read that
// races a Put returns either the old or the new value, both linearizable.
func (ix *index) scanBin(b uint64, hdr uint64, key uint64, skipSlot int, includeShadow bool) (slot int, val uint64, state uint64) {
	meta := atomic.LoadUint64(ix.linkMetaAddr(b))
	limit := slotLimit(meta)
	hdrAddr := ix.headerAddr(b)
	for i := 0; i < limit; i++ {
		if i == skipSlot {
			continue
		}
		s := slotState(hdr, i)
		if s != slotValid && (!includeShadow || s != slotShadow) {
			continue
		}
		k, v := ix.loadSlot(b, meta, i)
		if k != key {
			continue
		}
		if atomic.LoadUint64(hdrAddr) != hdr {
			return scanRetry, 0, 0
		}
		return i, v, s
	}
	if atomic.LoadUint64(hdrAddr) != hdr {
		return scanRetry, 0, 0
	}
	return scanMiss, 0, 0
}

// waitBinTransferred spins until bin b leaves the InTransfer state. Bin
// transfers copy at most 15 slots, so the wait is short; this is the only
// place a non-resize operation can block, which is what makes DLHT
// "practically" rather than strictly non-blocking (§2.1).
func (ix *index) waitBinTransferred(b uint64) {
	hdrAddr := ix.headerAddr(b)
	for spins := 0; ; spins++ {
		if binState(atomic.LoadUint64(hdrAddr)) != binInTransfer {
			return
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// nextIndex returns the successor index, spinning until the resizer has
// published it. A bin can only be In/DoneTransfer after publication, so the
// wait is momentary.
func (ix *index) nextIndex() *index {
	for {
		if nx := ix.next.Load(); nx != nil {
			return nx
		}
		runtime.Gosched()
	}
}

// redirect resolves the index an operation on bin b must run against:
// it waits out an in-flight bin transfer and follows the next pointer when
// the bin has already moved. Returns nil if the operation may proceed on ix.
func (ix *index) redirect(b uint64, hdr uint64) *index {
	switch binState(hdr) {
	case binNoTransfer:
		return nil
	case binInTransfer:
		ix.waitBinTransferred(b)
		return ix.nextIndex()
	default: // binDoneTransfer
		return ix.nextIndex()
	}
}

// ---------------------------------------------------------------------------
// Get (§3.2.1)
// ---------------------------------------------------------------------------

// Get returns the value stored under key in Inlined mode, or reports
// whether the key exists in HashSet mode (the value is then 0). It is
// lock-free and in the common case costs a single memory access.
func (h *Handle) Get(key uint64) (uint64, bool) {
	if h.t.cfg.SingleThread {
		return h.stGet(key)
	}
	ix := h.enter()
	v, ok := h.t.getIn(ix, key)
	h.leave()
	return v, ok
}

// Contains reports whether key is present (HashSet-friendly spelling).
func (h *Handle) Contains(key uint64) bool {
	_, ok := h.Get(key)
	return ok
}

func (t *Table) getIn(ix *index, key uint64) (uint64, bool) {
	return t.getInAt(ix, key, t.binFor(ix, key))
}

// getInAt is getIn with the key's bin within ix precomputed (the batch
// engine memoizes it during the prefetch stage). A resize redirect
// invalidates b: the op recomputes it against the successor index.
func (t *Table) getInAt(ix *index, key uint64, b uint64) (uint64, bool) {
	for {
		hdr := atomic.LoadUint64(ix.headerAddr(b))
		if nx := ix.redirect(b, hdr); nx != nil {
			ix = nx
			b = t.binFor(ix, key)
			continue
		}
		slot, v, _ := ix.scanBin(b, hdr, key, -1, false)
		switch slot {
		case scanRetry:
			continue
		case scanMiss:
			return 0, false
		default:
			return v, true
		}
	}
}

// ---------------------------------------------------------------------------
// Insert (§3.2.2)
// ---------------------------------------------------------------------------

// Insert adds key→val. It returns (0, nil) on success; (existing, ErrExists)
// when the key is already present; (0, ErrShadow) when the key is locked by
// an uncommitted shadow insert; (0, ErrFull) when the index is full and the
// table is not resizable; and (0, ErrReservedKey) for transfer-key values.
// In HashSet mode val is ignored.
func (h *Handle) Insert(key, val uint64) (uint64, error) {
	return h.insertState(key, val, slotValid)
}

// InsertShadow performs the transactional shadow Insert of §3.2.2: the key
// is inserted but remains hidden from Gets, Puts and Deletes until
// CommitShadow is called. A shadow insert acts as an exclusive lock on the
// key: concurrent Inserts of the same key fail with ErrShadow.
func (h *Handle) InsertShadow(key, val uint64) (uint64, error) {
	return h.insertState(key, val, slotShadow)
}

// CommitShadow finishes a shadow insert: commit=true publishes the key
// (state→Valid), commit=false aborts it (state→Invalid, slot reclaimed).
// Returns false if no shadow entry for key exists.
func (h *Handle) CommitShadow(key uint64, commit bool) bool {
	if h.t.cfg.SingleThread {
		return h.stCommitShadow(key, commit)
	}
	ix := h.enter()
	defer h.leave()
	h.t.beginUpdate()
	defer h.t.endUpdate()
	return h.commitShadowIn(ix, key, commit)
}

func (h *Handle) insertState(key, val uint64, finalState uint64) (uint64, error) {
	if isReserved(key) {
		return 0, ErrReservedKey
	}
	if h.t.cfg.SingleThread {
		return h.stInsert(key, val, finalState)
	}
	h.t.beginUpdate()
	ix := h.enter()
	v, err := h.t.insertIn(h, ix, key, val, finalState)
	h.leave()
	h.t.endUpdate()
	return v, err
}

// insertIn is the concurrent Insert body. It does not bracket itself with
// beginUpdate/endUpdate — the public entry points do — because the resize
// transfer re-enters it while an update is already in flight, and a strong
// snapshot draining the updater count must not deadlock against it.
func (t *Table) insertIn(h *Handle, ix *index, key, val uint64, finalState uint64) (uint64, error) {
	return t.insertInAt(h, ix, key, val, finalState, t.binFor(ix, key))
}

// insertInAt is insertIn with the key's bin within ix precomputed; whenever
// the op moves to a successor index the memoized bin is recomputed.
func (t *Table) insertInAt(h *Handle, ix *index, key, val uint64, finalState uint64, b uint64) (uint64, error) {
	for {
		hdrAddr := ix.headerAddr(b)
		hdr := atomic.LoadUint64(hdrAddr)
		if nx := ix.redirect(b, hdr); nx != nil {
			ix = nx
			b = t.binFor(ix, key)
			continue
		}
		// Step 2: Get phase — the key must not already exist.
		slot, v, st := ix.scanBin(b, hdr, key, -1, true)
		if slot == scanRetry {
			continue
		}
		if slot >= 0 {
			if st == slotShadow {
				return 0, ErrShadow
			}
			return v, ErrExists
		}
		// Step 3: pick the first Invalid slot (chaining on demand).
		i := firstInvalidSlot(hdr, slotsPerBin)
		if i < 0 {
			nx, err := t.resizeOrFail(h, ix)
			if err != nil {
				return 0, err
			}
			ix = nx
			b = t.binFor(ix, key)
			continue
		}
		// Step 4: claim the slot via header CAS.
		if !atomic.CompareAndSwapUint64(hdrAddr, hdr, bumpVersion(withSlotState(hdr, i, slotTryInsert))) {
			continue
		}
		// Chain a link bucket if the claimed slot needs one (§3.2.2
		// "Chaining buckets").
		meta := atomic.LoadUint64(ix.linkMetaAddr(b))
		if need, field := slotNeedsChain(meta, i); need {
			newMeta, ok := t.chainBucket(ix, b, field)
			if !ok {
				t.releaseSlot(ix, b, i)
				nx, err := t.resizeOrFail(h, ix)
				if err != nil {
					return 0, err
				}
				ix = nx
				b = t.binFor(ix, key)
				continue
			}
			meta = newMeta
		}
		// Step 4.1: fill the slot while it is invisible.
		ix.storeSlot(b, meta, i, key, val)
		// Step 5: publish via a second header CAS.
		v, err, done := t.finalizeInsert(ix, b, i, key, finalState)
		if done {
			return v, err
		}
		// Bin was caught by a transfer mid-insert: retry in the next
		// index; the abandoned TryInsert slot dies with the old index.
		ix = ix.nextIndex()
		b = t.binFor(ix, key)
	}
}

// finalizeInsert performs step 5 of the Insert algorithm: transition slot i
// from TryInsert to finalState. On a lost race with another insert of the
// same key it releases the claimed slot and reports ErrExists/ErrShadow.
// done=false means the bin entered a transfer and the caller must redo the
// insert in the next index.
func (t *Table) finalizeInsert(ix *index, b uint64, i int, key uint64, finalState uint64) (uint64, error, bool) {
	hdrAddr := ix.headerAddr(b)
	for {
		hdr := atomic.LoadUint64(hdrAddr)
		if binState(hdr) != binNoTransfer {
			if binState(hdr) == binInTransfer {
				ix.waitBinTransferred(b)
			}
			return 0, nil, false
		}
		// Re-run the Get phase excluding our own slot: a concurrent insert
		// of the same key may have published first.
		slot, v, st := ix.scanBin(b, hdr, key, i, true)
		if slot == scanRetry {
			continue
		}
		if slot >= 0 {
			t.releaseSlot(ix, b, i)
			if st == slotShadow {
				return 0, ErrShadow, true
			}
			return v, ErrExists, true
		}
		if atomic.CompareAndSwapUint64(hdrAddr, hdr, bumpVersion(withSlotState(hdr, i, finalState))) {
			if finalState == slotValid {
				// Shadow inserts bump at commit, not at staging.
				t.bumpVer(key)
			}
			return 0, nil, true
		}
	}
}

// releaseSlot returns a TryInsert slot to Invalid (abandoned claim).
func (t *Table) releaseSlot(ix *index, b uint64, i int) {
	hdrAddr := ix.headerAddr(b)
	for {
		hdr := atomic.LoadUint64(hdrAddr)
		if atomic.CompareAndSwapUint64(hdrAddr, hdr, bumpVersion(withSlotState(hdr, i, slotInvalid))) {
			return
		}
	}
}

// chainBucket links a bucket (field 1: single, field 2: consecutive pair)
// into bin b, racing other inserts on the link-metadata word. Returns the
// resulting metadata and false when the link array is exhausted.
func (t *Table) chainBucket(ix *index, b uint64, field int) (uint64, bool) {
	metaAddr := ix.linkMetaAddr(b)
	for {
		meta := atomic.LoadUint64(metaAddr)
		if field == 1 {
			if linkOne(meta) != 0 {
				return meta, true
			}
			idx := ix.allocLinkSingle()
			if idx == 0 {
				return meta, false
			}
			next := withLinkOne(meta, idx)
			if atomic.CompareAndSwapUint64(metaAddr, meta, next) {
				return next, true
			}
			ix.recycleLinkSingle(idx)
		} else {
			if linkTwo(meta) != 0 {
				return meta, true
			}
			idx := ix.allocLinkPair()
			if idx == 0 {
				return meta, false
			}
			next := withLinkTwo(meta, idx)
			if atomic.CompareAndSwapUint64(metaAddr, meta, next) {
				return next, true
			}
			ix.recycleLinkPair(idx)
		}
	}
}

// ---------------------------------------------------------------------------
// Delete (§3.2.3)
// ---------------------------------------------------------------------------

// Delete removes key, returning its value and true if it was present. The
// slot is reclaimed instantly — the headline advantage over open-addressing
// tombstones.
func (h *Handle) Delete(key uint64) (uint64, bool) {
	if h.t.cfg.SingleThread {
		return h.stDelete(key)
	}
	h.t.beginUpdate()
	ix := h.enter()
	v, ok := h.t.deleteIn(h, ix, key)
	h.leave()
	h.t.endUpdate()
	return v, ok
}

func (t *Table) deleteIn(h *Handle, ix *index, key uint64) (uint64, bool) {
	return t.deleteInAt(h, ix, key, t.binFor(ix, key))
}

// deleteInAt is deleteIn with the key's bin within ix precomputed.
func (t *Table) deleteInAt(h *Handle, ix *index, key uint64, b uint64) (uint64, bool) {
	for {
		hdrAddr := ix.headerAddr(b)
		hdr := atomic.LoadUint64(hdrAddr)
		if nx := ix.redirect(b, hdr); nx != nil {
			ix = nx
			b = t.binFor(ix, key)
			continue
		}
		slot, v, _ := ix.scanBin(b, hdr, key, -1, false)
		if slot == scanRetry {
			continue
		}
		if slot == scanMiss {
			return 0, false
		}
		// CAS against the header we scanned under: any concurrent
		// change to the bin (including the slot being deleted and
		// reused) bumps the version and fails this CAS.
		if atomic.CompareAndSwapUint64(hdrAddr, hdr, bumpVersion(withSlotState(hdr, slot, slotInvalid))) {
			t.bumpVer(key)
			t.afterDelete(h, v)
			return v, true
		}
	}
}

// afterDelete releases allocator-mode out-of-line storage, immediately or
// through the epoch GC (§3.2.3).
func (t *Table) afterDelete(h *Handle, val uint64) {
	if t.cfg.Mode != Allocator {
		return
	}
	ref := refOf(val)
	if ref.IsNil() {
		return
	}
	if h != nil && h.eh != nil {
		a := t.cfg.Alloc
		h.eh.Retire(func() { a.Free(ref) })
		return
	}
	t.cfg.Alloc.Free(ref)
}

// ---------------------------------------------------------------------------
// Put (§3.2.4)
// ---------------------------------------------------------------------------

// Put overwrites the value of an existing key with a double-word CAS on the
// slot, returning the previous value and true. It returns (0, false) when
// the key does not exist. Inlined mode only.
func (h *Handle) Put(key, val uint64) (uint64, bool) {
	if h.t.cfg.Mode != Inlined {
		panic(ErrWrongMode)
	}
	if h.t.cfg.SingleThread {
		return h.stPut(key, val)
	}
	h.t.beginUpdate()
	ix := h.enter()
	old, ok := h.t.putIn(ix, key, val)
	h.leave()
	h.t.endUpdate()
	return old, ok
}

func (t *Table) putIn(ix *index, key, val uint64) (uint64, bool) {
	return t.putInAt(ix, key, val, t.binFor(ix, key))
}

// putInAt is putIn with the key's bin within ix precomputed.
func (t *Table) putInAt(ix *index, key, val uint64, b uint64) (uint64, bool) {
	for {
		hdr := atomic.LoadUint64(ix.headerAddr(b))
		if nx := ix.redirect(b, hdr); nx != nil {
			ix = nx
			b = t.binFor(ix, key)
			continue
		}
		slot, v, _ := ix.scanBin(b, hdr, key, -1, false)
		if slot == scanRetry {
			continue
		}
		if slot == scanMiss {
			return 0, false
		}
		// §3.2.4: Puts do not re-read or CAS the header — only the
		// double-word CAS on the slot. A slot recycled to another key,
		// or claimed by the resize transfer (its key word becomes a
		// transfer key), makes this CAS fail and the Put retries.
		meta := atomic.LoadUint64(ix.linkMetaAddr(b))
		kw := ix.slotKeyWord(b, meta, slot)
		if dwcas(kw, key, v, key, val) {
			t.bumpVer(key)
			return v, true
		}
	}
}
