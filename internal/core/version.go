package core

import "sync"

// Per-key version tracking (opt-in via Config.TrackVersions): a striped
// map counting the mutations applied to each key. The cluster layer uses
// it as the last-write-wins arbiter for online resharding and
// anti-entropy — two replicas of a key that disagree on its value can be
// ordered by which one has applied more writes.
//
// The count is bumped at the COMMIT point of every mutation path — the
// dwcas in putInAt, the publishing header CAS in finalizeInsert, the
// invalidating CAS in deleteInAt, a shadow commit, and their
// single-thread twins — so the synchronous, batched and pipelined APIs
// all feed one counter. Resize migration does not bump: moving a key
// between indexes is not a logical mutation. A deleted key keeps its
// counter (the tombstone's version), which is what lets anti-entropy
// order a delete against a stale surviving copy.
//
// The counter is deliberately NOT linearizable with the slot contents: a
// reader pairing VersionOf with Get can bracket the Get between two
// VersionOf calls to detect a concurrent mutation (the server's GetVer
// does), but a torn pair survives a bounded retry. That is the
// Dynamo-grade precision resharding needs, at a cost the paper's hot
// paths never pay when the feature is off: one nil check.
//
// WAL replay drives the normal Handle ops, so a durable table rebuilds
// its version index faithfully on restart; snapshot compaction (which
// collapses a key's history to one record) shrinks replayed counts, so
// cross-replica comparisons treat equal values as converged regardless
// of count.

// verStripes is the number of locks the version map is striped over.
// Power of two; sized so independent writers rarely collide.
const verStripes = 128

// verIndex is the striped mutation counter.
type verIndex struct {
	stripes [verStripes]verStripe
}

type verStripe struct {
	mu sync.Mutex
	m  map[uint64]uint64
	// dlht:ok:fieldalignment — pad each stripe to its own cache line so
	// counter bumps on different stripes don't false-share.
	_ [40]byte
}

func newVerIndex() *verIndex {
	v := &verIndex{}
	for i := range v.stripes {
		v.stripes[i].m = make(map[uint64]uint64)
	}
	return v
}

func (v *verIndex) stripe(key uint64) *verStripe {
	// Fibonacci mix: sequential keys land on distinct stripes.
	return &v.stripes[(key*0x9e3779b97f4a7c15)>>57&(verStripes-1)]
}

// bump increments key's mutation count.
func (v *verIndex) bump(key uint64) {
	s := v.stripe(key)
	s.mu.Lock()
	s.m[key]++
	s.mu.Unlock()
}

// get returns key's mutation count (0 if the key was never mutated).
func (v *verIndex) get(key uint64) uint64 {
	s := v.stripe(key)
	s.mu.Lock()
	n := s.m[key]
	s.mu.Unlock()
	return n
}

// bumpVer records one applied mutation of key when tracking is enabled.
// The nil check is the entire disabled-mode cost.
func (t *Table) bumpVer(key uint64) {
	if t.vers != nil {
		t.vers.bump(key)
	}
}

// VersionOf returns key's applied-mutation count, or 0 when the table
// was built without Config.TrackVersions. The count survives deletes
// (the tombstone's version) and, on durable tables, restarts — WAL
// replay re-applies the same mutations.
func (h *Handle) VersionOf(key uint64) uint64 {
	if h.t.vers == nil {
		return 0
	}
	return h.t.vers.get(key)
}
