package cpuops

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"unsafe"
)

// slot allocates a single 16-byte-aligned 2-word slot.
func slot(t *testing.T) *[2]uint64 {
	t.Helper()
	w := AlignedUint64s(2, 16)
	p := (*[2]uint64)(unsafe.Pointer(&w[0]))
	if !IsAligned(unsafe.Pointer(p), 16) {
		t.Fatal("slot not 16-byte aligned")
	}
	return p
}

func TestCAS128SuccessAndFailure(t *testing.T) {
	impls := []struct {
		name string
		f    func(p *[2]uint64, o0, o1, n0, n1 uint64) bool
	}{
		{"public", CompareAndSwap128},
		{"fallback", casFallback},
	}
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			p := slot(t)
			p[0], p[1] = 10, 20
			if !impl.f(p, 10, 20, 30, 40) {
				t.Fatal("expected CAS success")
			}
			if p[0] != 30 || p[1] != 40 {
				t.Fatalf("slot = %v, want [30 40]", *p)
			}
			if impl.f(p, 10, 20, 1, 1) {
				t.Fatal("expected CAS failure on stale expected values")
			}
			if p[0] != 30 || p[1] != 40 {
				t.Fatalf("failed CAS mutated slot: %v", *p)
			}
			// Partial matches must fail.
			if impl.f(p, 30, 999, 0, 0) || impl.f(p, 999, 40, 0, 0) {
				t.Fatal("CAS succeeded with only one word matching")
			}
		})
	}
}

func TestCAS128PropertySingleThread(t *testing.T) {
	p := slot(t)
	f := func(a, b, c, d uint64) bool {
		p[0], p[1] = a, b
		if !CompareAndSwap128(p, a, b, c, d) {
			return false
		}
		return p[0] == c && p[1] == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Concurrent counter: N goroutines increment both halves of the slot via
// CAS128. Both halves must end equal to the total increment count — the
// atomicity invariant a torn implementation would break.
func TestCAS128ConcurrentAtomicity(t *testing.T) {
	for _, impl := range []struct {
		name string
		f    func(p *[2]uint64, o0, o1, n0, n1 uint64) bool
	}{
		{"public", CompareAndSwap128},
		{"fallback", casFallback},
	} {
		t.Run(impl.name, func(t *testing.T) {
			p := slot(t)
			const perG = 20000
			workers := runtime.GOMAXPROCS(0)
			if workers > 8 {
				workers = 8
			}
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						for {
							a := atomic.LoadUint64(&p[0])
							b := atomic.LoadUint64(&p[1])
							if a != b {
								// The two loads are not one atomic snapshot:
								// another CAS can land between them. Retry;
								// real tearing would make the final total
								// check below fail.
								continue
							}
							if impl.f(p, a, b, a+1, b+1) {
								break
							}
						}
					}
				}()
			}
			wg.Wait()
			want := uint64(workers * perG)
			if p[0] != want || p[1] != want {
				t.Fatalf("slot = [%d %d], want [%d %d]", p[0], p[1], want, want)
			}
		})
	}
}

// Two goroutines fight over distinct slots that share a fallback stripe;
// progress must still be made (no deadlock) and values must stay coherent.
func TestCASFallbackStripeSharing(t *testing.T) {
	w := AlignedUint64s(4, 16)
	p1 := (*[2]uint64)(unsafe.Pointer(&w[0]))
	p2 := (*[2]uint64)(unsafe.Pointer(&w[2]))
	var wg sync.WaitGroup
	for _, p := range []*[2]uint64{p1, p2} {
		wg.Add(1)
		go func(p *[2]uint64) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				for {
					a := atomic.LoadUint64(&p[0])
					if casFallback(p, a, a, a+1, a+1) {
						break
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if p1[0] != 5000 || p2[0] != 5000 {
		t.Fatalf("counters = %d, %d; want 5000, 5000", p1[0], p2[0])
	}
}

// TestCAS128AsmMatchesFallback cross-checks the amd64 assembly against the
// striped-lock fallback: for random slot states and operands, both
// implementations must agree on success/failure and leave the slot in the
// same state. Skipped on builds without the native path.
func TestCAS128AsmMatchesFallback(t *testing.T) {
	if !HasNativeCAS128() {
		t.Skip("no native CAS128 on this build")
	}
	pa, pf := slot(t), slot(t)
	f := func(s0, s1, o0, o1, n0, n1 uint64, matching bool) bool {
		if matching {
			// Half the cases exercise the success path exactly.
			o0, o1 = s0, s1
		}
		pa[0], pa[1] = s0, s1
		pf[0], pf[1] = s0, s1
		okA := cas128(pa, o0, o1, n0, n1)
		okF := casFallback(pf, o0, o1, n0, n1)
		return okA == okF && pa[0] == pf[0] && pa[1] == pf[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCAS128AsmConcurrentWithFallback drives the native asm and the public
// wrapper against the same slot from different goroutines; the both-halves-
// equal invariant must survive, proving the asm is a real LOCK CMPXCHG16B
// and not torn against itself.
func TestCAS128AsmConcurrentWithFallback(t *testing.T) {
	if !HasNativeCAS128() {
		t.Skip("no native CAS128 on this build")
	}
	p := slot(t)
	const perG = 20000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for {
					a := atomic.LoadUint64(&p[0])
					b := atomic.LoadUint64(&p[1])
					if a != b {
						// Two loads are not an atomic snapshot; retry.
						continue
					}
					if cas128(p, a, b, a+1, b+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if want := uint64(4 * perG); p[0] != want || p[1] != want {
		t.Fatalf("slot = [%d %d], want [%d %d]", p[0], p[1], want, want)
	}
}

func TestAlignedUint64s(t *testing.T) {
	for _, align := range []uintptr{8, 16, 64, 128} {
		for _, n := range []int{1, 2, 7, 64, 1024} {
			s := AlignedUint64s(n, align)
			if len(s) != n {
				t.Fatalf("len = %d, want %d", len(s), n)
			}
			if !IsAligned(unsafe.Pointer(&s[0]), align) {
				t.Fatalf("align %d, n %d: base %p not aligned", align, n, &s[0])
			}
			// The slice must be fully writable.
			for i := range s {
				s[i] = uint64(i)
			}
		}
	}
}

func TestAlignedUint64sBadAlign(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two alignment")
		}
	}()
	AlignedUint64s(8, 24)
}

func TestPrefetchDoesNotCrash(t *testing.T) {
	x := make([]uint64, 64)
	for i := range x {
		PrefetchUint64(&x[i])
	}
	Prefetch(unsafe.Pointer(&x[0]))
}

func TestHasNativeCAS128MatchesBuild(t *testing.T) {
	if runtime.GOARCH == "amd64" && !HasNativeCAS128() {
		t.Log("amd64 build without native CAS128 (purego tag?)")
	}
}

func BenchmarkCAS128Native(b *testing.B) {
	w := AlignedUint64s(2, 16)
	p := (*[2]uint64)(unsafe.Pointer(&w[0]))
	for i := 0; i < b.N; i++ {
		CompareAndSwap128(p, p[0], p[1], p[0]+1, p[1]+1)
	}
}

func BenchmarkCAS128Fallback(b *testing.B) {
	w := AlignedUint64s(2, 16)
	p := (*[2]uint64)(unsafe.Pointer(&w[0]))
	for i := 0; i < b.N; i++ {
		casFallback(p, p[0], p[1], p[0]+1, p[1]+1)
	}
}
