//go:build amd64 && !purego

package cpuops

import "unsafe"

const hasAsm = true

// cas128 is implemented in cpuops_amd64.s as LOCK CMPXCHG16B.
//
//go:noescape
func cas128(p *[2]uint64, old0, old1, new0, new1 uint64) bool

// prefetch is implemented in cpuops_amd64.s as PREFETCHT0.
//
//go:noescape
func prefetch(p unsafe.Pointer)
