// Package cpuops provides the two hardware primitives the DLHT paper relies
// on that portable Go lacks: a 128-bit (double-word) compare-and-swap used
// by Puts and by the resize transfer-key handoff (§3.2.4–3.2.5), and a
// software-prefetch hint used by the batch engine (§3.3).
//
// On amd64 both are implemented in assembly (LOCK CMPXCHG16B, PREFETCHT0).
// On other platforms, or with the `purego` build tag, CompareAndSwap128
// falls back to a striped-spinlock emulation that is correct but slower,
// and Prefetch becomes a no-op — equivalent to the paper's DLHT-NoBatch
// configuration.
package cpuops

import (
	"sync/atomic"
	"unsafe"
)

// HasNativeCAS128 reports whether CompareAndSwap128 compiles to a single
// LOCK CMPXCHG16B instruction on this build.
func HasNativeCAS128() bool { return hasAsm }

// CompareAndSwap128 atomically performs
//
//	if p[0] == old0 && p[1] == old1 { p[0], p[1] = new0, new1; return true }
//	return false
//
// p must be 16-byte aligned (see AlignedUint64s). This is the paper's
// double-word CAS on a 16-byte slot: p[0] is the key word, p[1] the value
// word.
func CompareAndSwap128(p *[2]uint64, old0, old1, new0, new1 uint64) bool {
	if hasAsm {
		return cas128(p, old0, old1, new0, new1)
	}
	return casFallback(p, old0, old1, new0, new1)
}

// Prefetch issues a best-effort prefetch of the cache line containing p
// into all cache levels (PREFETCHT0). A no-op on non-amd64 builds.
func Prefetch(p unsafe.Pointer) {
	if hasAsm {
		prefetch(p)
	}
}

// PrefetchUint64 prefetches the cache line containing the given word.
func PrefetchUint64(p *uint64) { Prefetch(unsafe.Pointer(p)) }

// ---------------------------------------------------------------------------
// Striped-spinlock fallback. Always compiled (and unit-tested) so the
// portable path stays correct even though amd64 builds never take it.
// ---------------------------------------------------------------------------

const casStripes = 64 // power of two

// casLocks are word-sized spinlocks, one per stripe, padded to avoid false
// sharing between stripes.
var casLocks [casStripes]struct {
	state atomic.Uint32
	_     [60]byte
}

func stripeFor(p *[2]uint64) *atomic.Uint32 {
	// Mix the address; slots are 16-byte apart so shift past the low bits.
	a := uintptr(unsafe.Pointer(p)) >> 4
	a ^= a >> 7
	return &casLocks[a&(casStripes-1)].state
}

// casFallback emulates the 128-bit CAS under a striped spinlock. All slot
// accesses inside the critical section use atomic loads/stores so that
// concurrent seqlock-style readers remain race-free.
func casFallback(p *[2]uint64, old0, old1, new0, new1 uint64) bool {
	l := stripeFor(p)
	for !l.CompareAndSwap(0, 1) {
		// Spin; critical section is a handful of instructions.
	}
	ok := atomic.LoadUint64(&p[0]) == old0 && atomic.LoadUint64(&p[1]) == old1
	if ok {
		atomic.StoreUint64(&p[0], new0)
		atomic.StoreUint64(&p[1], new1)
	}
	l.Store(0)
	return ok
}

// ---------------------------------------------------------------------------
// Aligned allocation
// ---------------------------------------------------------------------------

// AlignedUint64s returns a word slice of length n whose backing array is
// aligned to the given power-of-two byte boundary. CMPXCHG16B requires its
// operand to be 16-byte aligned; bucket arrays are allocated through this
// helper so that every 16-byte slot starts on an aligned boundary.
func AlignedUint64s(n int, align uintptr) []uint64 {
	if align == 0 || align&(align-1) != 0 {
		panic("cpuops: alignment must be a power of two")
	}
	pad := int(align / 8)
	if pad == 0 {
		pad = 1
	}
	raw := make([]uint64, n+pad)
	base := uintptr(unsafe.Pointer(&raw[0]))
	off := 0
	if rem := base & (align - 1); rem != 0 {
		off = int((align - rem) / 8)
	}
	return raw[off : off+n : off+n]
}

// IsAligned reports whether p is aligned to the given power-of-two boundary.
func IsAligned(p unsafe.Pointer, align uintptr) bool {
	return uintptr(p)&(align-1) == 0
}
