//go:build !amd64 || purego

package cpuops

import "unsafe"

const hasAsm = false

// cas128 is never called on this build; CompareAndSwap128 routes to the
// striped-lock fallback at compile time.
func cas128(p *[2]uint64, old0, old1, new0, new1 uint64) bool {
	panic("cpuops: cas128 asm not available on this platform")
}

// prefetch is a no-op on this build.
func prefetch(p unsafe.Pointer) {}
