//go:build amd64 && !purego

#include "textflag.h"

// func cas128(p *[2]uint64, old0, old1, new0, new1 uint64) bool
//
// LOCK CMPXCHG16B compares RDX:RAX against the 16 bytes at (DI) and, on
// match, stores RCX:RBX. ZF reports success. p must be 16-byte aligned or
// the instruction faults (#GP) — see AlignedUint64s.
TEXT ·cas128(SB), NOSPLIT, $0-41
	MOVQ	p+0(FP), DI
	MOVQ	old0+8(FP), AX
	MOVQ	old1+16(FP), DX
	MOVQ	new0+24(FP), BX
	MOVQ	new1+32(FP), CX
	LOCK
	CMPXCHG16B	(DI)
	SETEQ	ret+40(FP)
	RET

// func prefetch(p unsafe.Pointer)
TEXT ·prefetch(SB), NOSPLIT, $0-8
	MOVQ	p+0(FP), AX
	PREFETCHT0	(AX)
	RET
