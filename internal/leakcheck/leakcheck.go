// Package leakcheck fails a package's tests when goroutines outlive
// m.Run — the goleak pattern, implemented on runtime.Stack alone (the
// build image has no module cache or network, so the real
// go.uber.org/goleak is unavailable). Sweepers, group-commit sync
// goroutines, failure-detector probers and connection writers must all
// be joined by their owners' Close; one that lingers fails the package
// instead of silently leaking into production.
//
// Usage, in a package's TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// retryFor bounds how long Main waits for goroutines that are shutting
// down asynchronously (deferred Closes racing m.Run's return, netpoll
// wakeups) before declaring them leaked.
const retryFor = 5 * time.Second

// Main runs the package's tests, then fails the run if goroutines
// beyond the runtime's own are still alive once shutdown settles.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := wait(); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) outlived the tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// wait polls the goroutine set with backoff until it is clean or the
// retry budget runs out, returning the surviving stacks.
func wait() []string {
	deadline := time.Now().Add(retryFor)
	pause := time.Millisecond
	for {
		leaked := snapshot()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(pause)
		if pause < 100*time.Millisecond {
			pause *= 2
		}
	}
}

// snapshot returns the stacks of goroutines that are neither the
// current one nor recognizable runtime/testing machinery.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" || benign(g) || isCurrent(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// isCurrent: runtime.Stack(all) lists the calling goroutine first with
// "goroutine N [running]:" and this function on its stack.
func isCurrent(g string) bool {
	return strings.Contains(g, "repro/internal/leakcheck.snapshot")
}

// benign reports goroutines owned by the runtime or the testing
// harness — identified by the function at the top of their stack, the
// way goleak's IgnoreCurrent defaults do.
func benign(g string) bool {
	lines := strings.Split(g, "\n")
	if len(lines) < 2 {
		return true
	}
	top := strings.TrimSpace(lines[1])
	for _, prefix := range []string{
		"runtime.",       // gc, bgsweep, scavenger, finalizer, ...
		"os/signal.",     // signal_recv
		"testing.",       // the testing.Main goroutine waiting in m.Run
		"runtime/pprof.", // profile writers during -cpuprofile runs
		"runtime/trace.", // trace reader
	} {
		if strings.HasPrefix(top, prefix) {
			return true
		}
	}
	return false
}
