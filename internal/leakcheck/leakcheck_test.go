package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestSnapshotSeesLeak proves the detector: a parked goroutine shows
// up in snapshot, and disappears (within the retry budget) once
// released.
func TestSnapshotSeesLeak(t *testing.T) {
	release := make(chan struct{})
	go func() { // looks exactly like a forgotten sweeper
		<-release
	}()
	time.Sleep(10 * time.Millisecond)

	leaked := snapshot()
	found := false
	for _, g := range leaked {
		if strings.Contains(g, "leakcheck.TestSnapshotSeesLeak") {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot missed the parked goroutine; got %d stacks:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}

	close(release)
	if leaked := wait(); len(leaked) != 0 {
		t.Fatalf("wait() still reports %d stacks after release:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// TestBenignFilters pins the allowlist shape: runtime-owned stacks are
// ignored, package-owned ones are not.
func TestBenignFilters(t *testing.T) {
	cases := []struct {
		top  string
		want bool
	}{
		{"runtime.gopark(...)", true},
		{"os/signal.signal_recv()", true},
		{"testing.(*M).Run(...)", true},
		{"repro/internal/wal.(*Log).syncLoop(...)", false},
		{"repro/internal/expiry.(*Sweeper).run(...)", false},
	}
	for _, c := range cases {
		g := "goroutine 99 [chan receive]:\n" + c.top + "\n\tsomewhere.go:1"
		if got := benign(g); got != c.want {
			t.Errorf("benign(top=%q) = %v, want %v", c.top, got, c.want)
		}
	}
}
