package resp

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
)

// Client is a minimal pipelined RESP2 client: Send queues commands,
// Flush pushes them, Recv decodes one reply. It exists so the load
// generator, the smoke script's fallback path, tests and the example can
// drive the RESP listener without an external Redis client library. Not
// safe for concurrent use; run one Client per goroutine.
type Client struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	Pending int // replies queued but not yet received
}

// Dial connects a Client to a RESP listener.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}
}

// Close closes the underlying connection.
func (cl *Client) Close() error { return cl.c.Close() }

// Send queues one command as a multibulk array without flushing.
func (cl *Client) Send(args ...[]byte) error {
	var hdr [32]byte
	b := append(hdr[:0], '*')
	b = strconv.AppendInt(b, int64(len(args)), 10)
	b = append(b, '\r', '\n')
	if _, err := cl.bw.Write(b); err != nil {
		return err
	}
	for _, a := range args {
		b = append(hdr[:0], '$')
		b = strconv.AppendInt(b, int64(len(a)), 10)
		b = append(b, '\r', '\n')
		if _, err := cl.bw.Write(b); err != nil {
			return err
		}
		if _, err := cl.bw.Write(a); err != nil {
			return err
		}
		if _, err := cl.bw.WriteString("\r\n"); err != nil {
			return err
		}
	}
	cl.Pending++
	return nil
}

// SendStr is Send over string arguments.
func (cl *Client) SendStr(args ...string) error {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return cl.Send(bs...)
}

// Flush pushes every queued command to the server.
func (cl *Client) Flush() error { return cl.bw.Flush() }

// Reply is one decoded server reply.
type Reply struct {
	Kind  byte    // '+', '-', ':', '$', '*'
	Str   string  // simple string or error text
	Int   int64   // integer reply
	Bulk  []byte  // bulk payload; nil when Null
	Null  bool    // null bulk ($-1) or null array (*-1)
	Array []Reply // array elements
}

// IsErr reports whether the reply is an error.
func (r *Reply) IsErr() bool { return r.Kind == '-' }

// Text renders the reply's payload as a string (bulk, simple or integer).
func (r *Reply) Text() string {
	switch r.Kind {
	case '$':
		return string(r.Bulk)
	case ':':
		return strconv.FormatInt(r.Int, 10)
	default:
		return r.Str
	}
}

// Recv decodes the next reply; it must be matched 1:1 with Sends.
func (cl *Client) Recv() (Reply, error) {
	if cl.Pending > 0 {
		cl.Pending--
	}
	return cl.readReply(0)
}

// Do sends one command and waits for its reply (flushing the queue).
func (cl *Client) Do(args ...string) (Reply, error) {
	if err := cl.SendStr(args...); err != nil {
		return Reply{}, err
	}
	if err := cl.Flush(); err != nil {
		return Reply{}, err
	}
	return cl.Recv()
}

func (cl *Client) readLine() ([]byte, error) {
	line, err := cl.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	if n := len(line); n >= 2 && line[n-2] == '\r' {
		return line[:n-2], nil
	}
	return line[:len(line)-1], nil
}

func (cl *Client) readReply(depth int) (Reply, error) {
	if depth > 8 {
		return Reply{}, fmt.Errorf("resp: reply nesting too deep")
	}
	line, err := cl.readLine()
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, fmt.Errorf("resp: empty reply line")
	}
	r := Reply{Kind: line[0]}
	body := line[1:]
	switch r.Kind {
	case '+', '-':
		r.Str = string(body)
		return r, nil
	case ':':
		n, ok := parseInt(body)
		if !ok {
			return Reply{}, fmt.Errorf("resp: bad integer reply")
		}
		r.Int = n
		return r, nil
	case '$':
		n, ok := parseInt(body)
		if !ok || n > MaxBulk {
			return Reply{}, fmt.Errorf("resp: bad bulk length")
		}
		if n < 0 {
			r.Null = true
			return r, nil
		}
		r.Bulk = make([]byte, n)
		if _, err := ioReadFull(cl.br, r.Bulk); err != nil {
			return Reply{}, err
		}
		if _, err := cl.readLine(); err != nil {
			return Reply{}, err
		}
		return r, nil
	case '*':
		n, ok := parseInt(body)
		if !ok || n > MaxArgs {
			return Reply{}, fmt.Errorf("resp: bad array length")
		}
		if n < 0 {
			r.Null = true
			return r, nil
		}
		r.Array = make([]Reply, 0, n)
		for i := int64(0); i < n; i++ {
			el, err := cl.readReply(depth + 1)
			if err != nil {
				return Reply{}, err
			}
			r.Array = append(r.Array, el)
		}
		return r, nil
	default:
		return Reply{}, fmt.Errorf("resp: unknown reply type %q", r.Kind)
	}
}

func ioReadFull(br *bufio.Reader, dst []byte) (int, error) {
	n := 0
	for n < len(dst) {
		m, err := br.Read(dst[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
