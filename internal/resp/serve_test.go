package resp_test

import (
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	core "repro/internal/core"
	"repro/internal/expiry"
	"repro/internal/resp"
	"repro/internal/wal"
)

func kvConfig() core.Config {
	return core.Config{
		Bins: 1 << 10, Resizable: true, Mode: core.Allocator,
		VariableKV: true, Namespaces: true, EpochGC: true,
		MaxThreads: 64,
	}
}

// respServer runs a resp.Serve loop per accepted connection over a real
// listener, the way the network server does: one handle per connection,
// one shared expiry index.
type respServer struct {
	ln  net.Listener
	tbl *core.Table
	ix  *expiry.Index
	log resp.WAL
	wg  sync.WaitGroup
}

func startRESP(t *testing.T, tbl *core.Table, ix *expiry.Index, log resp.WAL) *respServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &respServer{ln: ln, tbl: tbl, ix: ix, log: log}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer c.Close()
				h := tbl.MustHandle()
				defer h.Close()
				resp.Serve(c, resp.ServeOpts{Table: tbl, Handle: h, Expiry: ix, Log: log})
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

func (s *respServer) dial(t *testing.T) *resp.Client {
	t.Helper()
	cl, err := resp.Dial(s.ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func mustDo(t *testing.T, cl *resp.Client, args ...string) resp.Reply {
	t.Helper()
	r, err := cl.Do(args...)
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return r
}

func wantText(t *testing.T, cl *resp.Client, want string, args ...string) {
	t.Helper()
	r := mustDo(t, cl, args...)
	if r.IsErr() {
		t.Fatalf("%v: unexpected error %q", args, r.Str)
	}
	if got := r.Text(); got != want {
		t.Fatalf("%v = %q, want %q", args, got, want)
	}
}

func wantNull(t *testing.T, cl *resp.Client, args ...string) {
	t.Helper()
	r := mustDo(t, cl, args...)
	if !r.Null {
		t.Fatalf("%v = %+v, want null", args, r)
	}
}

func wantErrContains(t *testing.T, cl *resp.Client, sub string, args ...string) {
	t.Helper()
	r := mustDo(t, cl, args...)
	if !r.IsErr() || !strings.Contains(r.Str, sub) {
		t.Fatalf("%v = %+v, want error containing %q", args, r, sub)
	}
}

func TestCommandMatrix(t *testing.T) {
	tbl := core.MustNew(kvConfig())
	s := startRESP(t, tbl, expiry.New(nil), nil)
	cl := s.dial(t)

	wantText(t, cl, "PONG", "PING")
	wantText(t, cl, "hey", "PING", "hey")
	wantText(t, cl, "echoed", "ECHO", "echoed")

	// SET/GET basics, case-insensitive commands.
	wantText(t, cl, "OK", "set", "k1", "v1")
	wantText(t, cl, "v1", "GET", "k1")
	wantNull(t, cl, "GET", "missing")
	wantText(t, cl, "OK", "SET", "k1", "v2")
	wantText(t, cl, "v2", "GET", "k1")

	// NX/XX.
	wantNull(t, cl, "SET", "k1", "v3", "NX")
	wantText(t, cl, "v2", "GET", "k1")
	wantText(t, cl, "OK", "SET", "k1", "v3", "XX")
	wantNull(t, cl, "SET", "nope", "v", "XX")
	wantText(t, cl, "1", "SETNX", "fresh", "x")
	wantText(t, cl, "0", "SETNX", "fresh", "y")
	wantText(t, cl, "x", "GET", "fresh")

	// DEL / EXISTS.
	wantText(t, cl, "1", "EXISTS", "k1")
	wantText(t, cl, "2", "EXISTS", "k1", "missing", "fresh")
	wantText(t, cl, "2", "DEL", "k1", "fresh", "missing")
	wantText(t, cl, "0", "EXISTS", "k1")

	// MSET / MGET.
	wantText(t, cl, "OK", "MSET", "a", "1", "b", "2", "c", "3")
	r := mustDo(t, cl, "MGET", "a", "missing", "c")
	if len(r.Array) != 3 {
		t.Fatalf("MGET array len %d", len(r.Array))
	}
	if r.Array[0].Text() != "1" || !r.Array[1].Null || r.Array[2].Text() != "3" {
		t.Fatalf("MGET = %+v", r.Array)
	}

	// INCR family.
	wantText(t, cl, "1", "INCR", "ctr")
	wantText(t, cl, "11", "INCRBY", "ctr", "10")
	wantText(t, cl, "10", "DECR", "ctr")
	wantText(t, cl, "7", "DECRBY", "ctr", "3")
	wantText(t, cl, "7", "GET", "ctr")
	wantText(t, cl, "OK", "SET", "notnum", "abc")
	wantErrContains(t, cl, "not an integer", "INCR", "notnum")
	wantErrContains(t, cl, "not an integer", "INCRBY", "ctr", "abc")
	wantText(t, cl, "OK", "SET", "big", strconv.FormatInt(1<<63-1, 10))
	wantErrContains(t, cl, "overflow", "INCR", "big")

	// TTL bookkeeping without expiry.
	wantText(t, cl, "-1", "TTL", "ctr")
	wantText(t, cl, "-2", "TTL", "missing")
	wantText(t, cl, "0", "EXPIRE", "missing", "10")
	wantText(t, cl, "1", "EXPIRE", "ctr", "100")
	rr := mustDo(t, cl, "TTL", "ctr")
	if rr.Int <= 0 || rr.Int > 100 {
		t.Fatalf("TTL = %d, want (0,100]", rr.Int)
	}
	rr = mustDo(t, cl, "PTTL", "ctr")
	if rr.Int <= 0 || rr.Int > 100_000 {
		t.Fatalf("PTTL = %d", rr.Int)
	}
	wantText(t, cl, "1", "PERSIST", "ctr")
	wantText(t, cl, "0", "PERSIST", "ctr")
	wantText(t, cl, "-1", "TTL", "ctr")

	// EXPIRE in the past deletes.
	wantText(t, cl, "1", "EXPIRE", "ctr", "-1")
	wantNull(t, cl, "GET", "ctr")
	wantText(t, cl, "-2", "TTL", "ctr")

	// A plain SET clears the TTL.
	wantText(t, cl, "OK", "SET", "t1", "v", "EX", "100")
	wantText(t, cl, "OK", "SET", "t1", "v2")
	wantText(t, cl, "-1", "TTL", "t1")
	// KEEPTTL preserves it.
	wantText(t, cl, "OK", "SET", "t2", "v", "EX", "100")
	wantText(t, cl, "OK", "SET", "t2", "v2", "KEEPTTL")
	if rr := mustDo(t, cl, "TTL", "t2"); rr.Int <= 0 {
		t.Fatalf("KEEPTTL lost the deadline: TTL=%d", rr.Int)
	}

	// SELECT maps onto namespaces.
	wantText(t, cl, "OK", "SET", "nskey", "zero")
	wantText(t, cl, "OK", "SELECT", "1")
	wantNull(t, cl, "GET", "nskey")
	wantText(t, cl, "OK", "SET", "nskey", "one")
	wantText(t, cl, "one", "GET", "nskey")
	wantText(t, cl, "OK", "SELECT", "0")
	wantText(t, cl, "zero", "GET", "nskey")
	wantErrContains(t, cl, "out of range", "SELECT", "4096")
	wantErrContains(t, cl, "out of range", "SELECT", "-1")

	// Stubs.
	if r := mustDo(t, cl, "COMMAND", "DOCS"); len(r.Array) != 0 {
		t.Fatalf("COMMAND = %+v", r)
	}
	if r := mustDo(t, cl, "CONFIG", "GET", "save"); len(r.Array) != 0 {
		t.Fatalf("CONFIG GET = %+v", r)
	}
	wantText(t, cl, "OK", "CONFIG", "SET", "appendonly", "no")
	if r := mustDo(t, cl, "INFO"); !strings.Contains(string(r.Bulk), "redis_version") {
		t.Fatalf("INFO = %q", r.Bulk)
	}
	if r := mustDo(t, cl, "DBSIZE"); r.Int <= 0 {
		t.Fatalf("DBSIZE = %d", r.Int)
	}

	// Errors.
	wantErrContains(t, cl, "unknown command", "NOSUCH")
	wantErrContains(t, cl, "wrong number of arguments", "GET")
	wantErrContains(t, cl, "wrong number of arguments", "SET", "k")
	wantErrContains(t, cl, "syntax error", "SET", "k", "v", "BOGUS")
	wantErrContains(t, cl, "syntax error", "SET", "k", "v", "NX", "XX")
}

// TestTTLExpiresLive: a key SET with PX reads as a miss after its
// deadline — lazily on the read path, no sweeper involved.
func TestTTLExpiresLive(t *testing.T) {
	tbl := core.MustNew(kvConfig())
	s := startRESP(t, tbl, expiry.New(nil), nil)
	cl := s.dial(t)

	wantText(t, cl, "OK", "SET", "k", "v", "PX", "40")
	wantText(t, cl, "v", "GET", "k")
	wantText(t, cl, "1", "EXISTS", "k")
	time.Sleep(80 * time.Millisecond)
	wantNull(t, cl, "GET", "k")
	wantText(t, cl, "-2", "TTL", "k")
	wantText(t, cl, "0", "EXISTS", "k")
	// And the slot is genuinely free again.
	wantText(t, cl, "OK", "SET", "k", "v2")
	wantText(t, cl, "v2", "GET", "k")
	wantText(t, cl, "-1", "TTL", "k")
}

// TestSweeperReclaims: with a running sweeper, expired keys disappear
// from the table without any client touching them.
func TestSweeperReclaims(t *testing.T) {
	tbl := core.MustNew(kvConfig())
	ix := expiry.New(nil)
	h := tbl.MustHandle()
	sw := ix.StartSweeper(expiry.SweepOpts{
		Interval: 10 * time.Millisecond,
		OnExpired: func(ns uint16, key []byte, _ int64) {
			hash := tbl.HashOfKV(ns, key)
			mu := ix.Lock(hash)
			mu.Lock()
			if d, ok := ix.Deadline(ns, key, hash); ok && d <= ix.Now() {
				h.DeleteKVHashed(ns, key, hash)
				ix.Remove(ns, key, hash)
			}
			mu.Unlock()
		},
		OnRound: func() { h.AdvanceEpoch() },
	})
	defer func() {
		sw.Stop()
		h.Close()
	}()
	s := startRESP(t, tbl, ix, nil)
	cl := s.dial(t)
	for i := 0; i < 50; i++ {
		wantText(t, cl, "OK", "SET", "sweep-"+strconv.Itoa(i), "v", "PX", "30")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ix.Len() == 0 {
			// Swept from the index; confirm the table slots went too.
			mh := tbl.MustHandle()
			n := mh.Len()
			mh.Close()
			if n == 0 {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("sweeper left %d TTL entries behind", ix.Len())
}

// TestPipelinedBurst: many commands written before any reply is read come
// back in order, the GET replies streamed through the pipeline.
func TestPipelinedBurst(t *testing.T) {
	tbl := core.MustNew(kvConfig())
	s := startRESP(t, tbl, expiry.New(nil), nil)
	cl := s.dial(t)

	const n = 500
	for i := 0; i < n; i++ {
		if err := cl.SendStr("SET", "key-"+strconv.Itoa(i), "val-"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := cl.SendStr("GET", "key-"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r, err := cl.Recv()
		if err != nil || r.Kind != '+' {
			t.Fatalf("SET %d: %+v %v", i, r, err)
		}
	}
	for i := 0; i < n; i++ {
		r, err := cl.Recv()
		if err != nil {
			t.Fatalf("GET %d: %v", i, err)
		}
		if want := "val-" + strconv.Itoa(i); string(r.Bulk) != want {
			t.Fatalf("GET %d = %q, want %q", i, r.Bulk, want)
		}
	}
}

// TestLargeValue: a bulk bigger than the write-buffer flush threshold
// round-trips, and one over the allocator's block bound is refused with
// a clean error instead of a dropped connection.
func TestLargeValue(t *testing.T) {
	tbl := core.MustNew(kvConfig())
	s := startRESP(t, tbl, expiry.New(nil), nil)
	cl := s.dial(t)
	big := strings.Repeat("z", 60_000)
	wantText(t, cl, "OK", "SET", "big", big)
	r := mustDo(t, cl, "GET", "big")
	if string(r.Bulk) != big {
		t.Fatalf("large value corrupted: got %d bytes", len(r.Bulk))
	}
	// Over the default arena's 64 KiB block bound: an error, then the
	// connection keeps working.
	huge := strings.Repeat("z", 80_000)
	if rr := mustDo(t, cl, "SET", "toobig", huge); !rr.IsErr() {
		t.Fatalf("oversized SET = %+v, want error", rr)
	}
	wantText(t, cl, "PONG", "PING")
}

// TestInlineAndProtocolError: inline commands work; garbage closes the
// connection after one -ERR line.
func TestInlineAndProtocolError(t *testing.T) {
	tbl := core.MustNew(kvConfig())
	s := startRESP(t, tbl, expiry.New(nil), nil)

	c, err := net.Dial("tcp", s.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("PING\r\nSET ik iv\r\nGET ik\r\n*zz\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	var got []byte
	for {
		n, err := c.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	s1 := string(got)
	for _, want := range []string{"+PONG\r\n", "+OK\r\n", "$2\r\niv\r\n", "-ERR Protocol error"} {
		if !strings.Contains(s1, want) {
			t.Fatalf("response %q missing %q", s1, want)
		}
	}
}

// TestQuit: QUIT answers +OK and the server closes the connection.
func TestQuit(t *testing.T) {
	tbl := core.MustNew(kvConfig())
	s := startRESP(t, tbl, expiry.New(nil), nil)
	cl := s.dial(t)
	wantText(t, cl, "OK", "QUIT")
	if _, err := cl.Do("PING"); err == nil {
		t.Fatal("connection survived QUIT")
	}
}

// TestDurableTTLAcrossRestart is the drop-in acceptance path: SETs with
// TTLs against a WAL-backed table survive (or die) correctly across a
// restart — an expired key stays dead after replay, an unexpired one
// keeps its deadline, and INCR preserves a TTL through the log.
func TestDurableTTLAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := kvConfig()
	ds, err := wal.Open(dir, cfg, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := startRESP(t, ds.Table(), ds.Expiry(), ds.Log())
	cl := s.dial(t)

	wantText(t, cl, "OK", "SET", "dies", "v", "PX", "50")
	wantText(t, cl, "OK", "SET", "lives", "v", "EX", "100")
	wantText(t, cl, "OK", "SET", "plain", "v")
	wantText(t, cl, "1", "INCR", "ttlctr")
	wantText(t, cl, "1", "EXPIRE", "ttlctr", "100")
	wantText(t, cl, "2", "INCR", "ttlctr") // must re-log the deadline
	wantText(t, cl, "OK", "SET", "cleared", "v", "EX", "100")
	wantText(t, cl, "OK", "SET", "cleared", "v2") // plain SET clears TTL
	cl.Close()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	time.Sleep(80 * time.Millisecond) // let "dies" pass its deadline

	r, err := wal.Open(dir, cfg, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.GetKV(0, []byte("dies")); ok {
		t.Fatal("expired key came back from the WAL")
	}
	if v, ok := r.GetKV(0, []byte("lives")); !ok || string(v) != "v" {
		t.Fatalf("lives = %q,%v", v, ok)
	}
	if ttl, has, exists := r.TTL(0, []byte("lives")); !exists || !has || ttl <= 0 {
		t.Fatalf("lives lost its TTL: %v %v %v", ttl, has, exists)
	}
	if v, ok := r.GetKV(0, []byte("ttlctr")); !ok || string(v) != "2" {
		t.Fatalf("ttlctr = %q,%v; want 2", v, ok)
	}
	if _, has, exists := r.TTL(0, []byte("ttlctr")); !exists || !has {
		t.Fatal("INCR dropped the TTL across replay")
	}
	if v, ok := r.GetKV(0, []byte("plain")); !ok || string(v) != "v" {
		t.Fatalf("plain = %q,%v", v, ok)
	}
	if ttl, has, exists := r.TTL(0, []byte("cleared")); !exists || has {
		t.Fatalf("cleared kept a TTL across replay: %v %v %v", ttl, has, exists)
	}
	if v, _ := r.GetKV(0, []byte("cleared")); string(v) != "v2" {
		t.Fatalf("cleared = %q, want v2 (upsert replay)", v)
	}
}
