package resp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func readAll(t *testing.T, input string) [][]string {
	t.Helper()
	r := NewReader(strings.NewReader(input), 0)
	var out [][]string
	var c Command
	for {
		err := r.ReadCommand(&c)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("ReadCommand: %v", err)
		}
		args := make([]string, len(c.Args))
		for i, a := range c.Args {
			args[i] = string(a)
		}
		out = append(out, args)
	}
}

func TestReadCommandMultibulk(t *testing.T) {
	cmds := readAll(t, "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n*1\r\n$4\r\nPING\r\n")
	if len(cmds) != 2 {
		t.Fatalf("got %d commands", len(cmds))
	}
	if got := strings.Join(cmds[0], " "); got != "SET k hello" {
		t.Fatalf("cmd 0 = %q", got)
	}
	if got := strings.Join(cmds[1], " "); got != "PING" {
		t.Fatalf("cmd 1 = %q", got)
	}
}

func TestReadCommandInline(t *testing.T) {
	cmds := readAll(t, "PING\r\nSET  k   v\r\n\r\nGET k\n")
	want := [][]string{{"PING"}, {"SET", "k", "v"}, nil, {"GET", "k"}}
	if len(cmds) != len(want) {
		t.Fatalf("got %d commands, want %d: %v", len(cmds), len(want), cmds)
	}
	for i := range want {
		if strings.Join(cmds[i], " ") != strings.Join(want[i], " ") {
			t.Fatalf("cmd %d = %v, want %v", i, cmds[i], want[i])
		}
	}
}

// TestReadCommandRawRealloc: args must survive Raw growing between bulks.
func TestReadCommandRawRealloc(t *testing.T) {
	big := strings.Repeat("x", 100_000)
	in := "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$" + "100000" + "\r\n" + big + "\r\n"
	cmds := readAll(t, in)
	if len(cmds) != 1 || cmds[0][0] != "SET" || cmds[0][1] != "k" || cmds[0][2] != big {
		t.Fatal("bulk spanning reallocation corrupted earlier args")
	}
}

func TestReadCommandProtocolErrors(t *testing.T) {
	for _, in := range []string{
		"*abc\r\n",
		"*-1\r\n",
		"*2\r\n$3\r\nGET\r\n:5\r\n",
		"*1\r\n$-2\r\n",
		"*1\r\n$99999999999999999999\r\n",
		"*1\r\n$3\r\nabcX\r\n", // bad bulk terminator
		"*70000\r\n",           // over MaxArgs
	} {
		r := NewReader(strings.NewReader(in), 0)
		var c Command
		err := r.ReadCommand(&c)
		for err == nil {
			err = r.ReadCommand(&c)
		}
		if !errors.Is(err, ErrProtocol) && err != io.EOF && err != io.ErrUnexpectedEOF {
			t.Fatalf("input %q: err = %v", in, err)
		}
		if errors.Is(err, io.EOF) && strings.HasPrefix(in, "*7") {
			t.Fatalf("input %q should be a protocol error", in)
		}
	}
}

func TestParseInt(t *testing.T) {
	cases := []struct {
		in string
		n  int64
		ok bool
	}{
		{"0", 0, true}, {"123", 123, true}, {"-9", -9, true},
		{"+7", 7, true}, {"", 0, false}, {"-", 0, false},
		{"12a", 0, false}, {"9223372036854775807", 1<<63 - 1, true},
		{"9223372036854775808", 0, false}, {"99999999999999999999", 0, false},
	}
	for _, c := range cases {
		n, ok := parseInt([]byte(c.in))
		if ok != c.ok || (ok && n != c.n) {
			t.Fatalf("parseInt(%q) = %d,%v; want %d,%v", c.in, n, ok, c.n, c.ok)
		}
	}
}

// FuzzRESPDecode: the command reader never panics on hostile bytes — it
// either parses, reports ErrProtocol, or runs out of input.
func FuzzRESPDecode(f *testing.F) {
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"))
	f.Add([]byte("PING\r\n"))
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$70000\r\n"))
	f.Add([]byte("\r\n\n*0\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data), 512)
		var c Command
		for i := 0; i < 64; i++ {
			if err := r.ReadCommand(&c); err != nil {
				return
			}
		}
	})
}
