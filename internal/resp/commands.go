package resp

import (
	"errors"
	"strconv"

	core "repro/internal/core"
)

// Command dispatch. GET and MGET are the streamed path: their keys are
// retained in the arena and enqueued on the connection's KVPipeline, and
// their replies are written by OnComplete in enqueue order. Every other
// command is a barrier — it drains the pipeline first, so its inline
// reply cannot overtake a pipelined lookup's.

func upperTo(dst, src []byte) []byte {
	for _, c := range src {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

func (cn *conn) dispatch(cmd *Command) {
	args := cmd.Args
	if len(args[0]) > 32 {
		cn.barrier()
		cn.writeError("ERR unknown command")
		return
	}
	var nbuf [32]byte
	name := upperTo(nbuf[:0], args[0])
	switch string(name) {
	case "GET":
		cn.cmdGet(args)
	case "SET":
		cn.cmdSet(args)
	case "SETNX":
		cn.cmdSetNX(args)
	case "MGET":
		cn.cmdMGet(args)
	case "MSET":
		cn.cmdMSet(args)
	case "DEL", "UNLINK":
		cn.cmdDel(args)
	case "EXISTS":
		cn.cmdExists(args)
	case "INCR":
		cn.cmdIncr(args, "incr", 1, false)
	case "DECR":
		cn.cmdIncr(args, "decr", -1, false)
	case "INCRBY":
		cn.cmdIncr(args, "incrby", 1, true)
	case "DECRBY":
		cn.cmdIncr(args, "decrby", -1, true)
	case "TTL":
		cn.cmdTTL(args, "ttl", false)
	case "PTTL":
		cn.cmdTTL(args, "pttl", true)
	case "EXPIRE":
		cn.cmdExpire(args, "expire", 1000)
	case "PEXPIRE":
		cn.cmdExpire(args, "pexpire", 1)
	case "PERSIST":
		cn.cmdPersist(args)
	case "PING":
		cn.barrier()
		if len(args) > 1 {
			cn.writeBulk(args[1])
		} else {
			cn.writeSimple("PONG")
		}
	case "ECHO":
		cn.barrier()
		if len(args) != 2 {
			cn.wrongArgs("echo")
			return
		}
		cn.writeBulk(args[1])
	case "SELECT":
		cn.cmdSelect(args)
	case "QUIT":
		cn.barrier()
		cn.writeSimple("OK")
		cn.closed = true
	case "DBSIZE":
		cn.barrier()
		cn.writeInt(int64(cn.h.Len()))
	case "COMMAND":
		// Handshake stub: clients probe COMMAND / COMMAND DOCS at connect
		// and tolerate an empty table.
		cn.barrier()
		cn.writeArrayHeader(0)
	case "CONFIG":
		cn.cmdConfig(args)
	case "INFO":
		cn.cmdInfo(args)
	default:
		cn.barrier()
		cn.writeError("ERR unknown command '" + string(args[0]) + "'")
	}
}

func (cn *conn) wrongArgs(name string) {
	cn.writeError("ERR wrong number of arguments for '" + name + "' command")
}

func (cn *conn) writeKVErr(err error) {
	cn.writeError("ERR " + err.Error())
}

// lazyExpireLocked is the lazy-expire step, stripe lock held: a key past
// its deadline is deleted (unlogged — replay re-derives the deadline and
// the open-time purge converges) and reported expired.
func (cn *conn) lazyExpireLocked(ns uint16, key []byte, hash uint64) bool {
	if at, ok := cn.idx.Deadline(ns, key, hash); ok && at <= cn.idx.Now() {
		cn.h.DeleteKVHashed(ns, key, hash)
		cn.idx.Remove(ns, key, hash)
		return true
	}
	return false
}

// lazyExpire checks key's deadline from the fast path and, if passed,
// barriers the pipeline (a mutation may not run under in-flight views of
// this handle) and deletes under the stripe lock. Reports whether the key
// is expired-and-now-gone; a lost race against a concurrent writer
// reports false and the caller proceeds with a live read.
func (cn *conn) lazyExpire(ns uint16, key []byte, hash uint64) bool {
	at, ok := cn.idx.Deadline(ns, key, hash)
	if !ok || at > cn.idx.Now() {
		return false
	}
	cn.barrier()
	mu := cn.idx.Lock(hash)
	mu.Lock()
	expired := cn.lazyExpireLocked(ns, key, hash)
	mu.Unlock()
	return expired
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

func (cn *conn) cmdGet(args [][]byte) {
	if len(args) != 2 {
		cn.barrier()
		cn.wrongArgs("get")
		return
	}
	key := args[1]
	if err := cn.tbl.CheckKV(cn.ns, key, nil, false); err != nil {
		cn.barrier()
		cn.writeKVErr(err)
		return
	}
	hash := cn.tbl.HashOfKV(cn.ns, key)
	if cn.lazyExpire(cn.ns, key, hash) {
		cn.writeNull()
		return
	}
	cn.pl.GetHashed(cn.ns, cn.retain(key), hash)
}

func (cn *conn) cmdMGet(args [][]byte) {
	if len(args) < 2 {
		cn.barrier()
		cn.wrongArgs("mget")
		return
	}
	// The *N header must precede the first value, so the pipeline has to
	// be empty when it goes out; the per-key replies then stream from
	// OnComplete like plain GETs.
	cn.barrier()
	cn.writeArrayHeader(len(args) - 1)
	for _, key := range args[1:] {
		if cn.tbl.CheckKV(cn.ns, key, nil, false) != nil {
			// An unstorable key cannot exist: nil, ordered via barrier.
			cn.barrier()
			cn.writeNull()
			continue
		}
		hash := cn.tbl.HashOfKV(cn.ns, key)
		if cn.lazyExpire(cn.ns, key, hash) {
			cn.writeNull()
			continue
		}
		cn.pl.GetHashed(cn.ns, cn.retain(key), hash)
	}
}

func (cn *conn) cmdExists(args [][]byte) {
	cn.barrier()
	if len(args) < 2 {
		cn.wrongArgs("exists")
		return
	}
	var n int64
	for _, key := range args[1:] {
		if cn.tbl.CheckKV(cn.ns, key, nil, false) != nil {
			continue
		}
		hash := cn.tbl.HashOfKV(cn.ns, key)
		mu := cn.idx.Lock(hash)
		mu.Lock()
		if !cn.lazyExpireLocked(cn.ns, key, hash) {
			if _, ok := cn.h.GetKV(cn.ns, key); ok {
				n++
			}
		}
		mu.Unlock()
	}
	cn.writeInt(n)
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

// upsertLocked is the replace-or-insert core, stripe lock held, pipeline
// drained.
func (cn *conn) upsertLocked(ns uint16, key, val []byte, hash uint64) error {
	for {
		err := cn.h.InsertKVHashed(ns, key, val, hash)
		if err == nil {
			return nil
		}
		if !errors.Is(err, core.ErrExists) {
			return err
		}
		cn.h.DeleteKVHashed(ns, key, hash)
	}
}

func (cn *conn) trackSeq(seq uint64) {
	if seq > cn.needSeq {
		cn.needSeq = seq
	}
}

func (cn *conn) cmdSet(args [][]byte) {
	cn.barrier()
	if len(args) < 3 {
		cn.wrongArgs("set")
		return
	}
	key, val := args[1], args[2]
	var atMs int64
	var nx, xx, keep bool
	for i := 3; i < len(args); i++ {
		var obuf [8]byte
		switch string(upperTo(obuf[:0], args[i])) {
		case "NX":
			nx = true
		case "XX":
			xx = true
		case "KEEPTTL":
			keep = true
		case "EX", "PX", "EXAT", "PXAT":
			if i+1 >= len(args) {
				cn.writeError("ERR syntax error")
				return
			}
			n, ok := parseInt(args[i+1])
			if !ok {
				cn.writeError("ERR value is not an integer or out of range")
				return
			}
			var obuf2 [8]byte
			switch string(upperTo(obuf2[:0], args[i])) {
			case "EX":
				if n <= 0 {
					cn.writeError("ERR invalid expire time in 'set' command")
					return
				}
				atMs = cn.idx.Now() + n*1000
			case "PX":
				if n <= 0 {
					cn.writeError("ERR invalid expire time in 'set' command")
					return
				}
				atMs = cn.idx.Now() + n
			case "EXAT":
				atMs = n * 1000
			case "PXAT":
				atMs = n
			}
			i++
		default:
			cn.writeError("ERR syntax error")
			return
		}
	}
	if nx && xx {
		cn.writeError("ERR syntax error")
		return
	}
	if err := cn.tbl.CheckKV(cn.ns, key, val, true); err != nil {
		cn.writeKVErr(err)
		return
	}
	set, err := cn.setLocked(key, val, atMs, nx, xx, keep)
	if err != nil {
		cn.writeKVErr(err)
		return
	}
	if !set {
		cn.writeNull()
		return
	}
	cn.writeSimple("OK")
}

// setLocked applies a SET under the key's stripe lock: the NX/XX
// existence gate, the upsert, one insert record (replay upserts too, and
// clears the key's TTL — Redis SET semantics for free), and the deadline:
// set with its own expire record, kept alive across replay by re-logging
// (KEEPTTL), or cleared.
func (cn *conn) setLocked(key, val []byte, atMs int64, nx, xx, keep bool) (bool, error) {
	hash := cn.tbl.HashOfKV(cn.ns, key)
	mu := cn.idx.Lock(hash)
	mu.Lock()
	defer mu.Unlock()
	cn.lazyExpireLocked(cn.ns, key, hash)
	if nx || xx {
		_, exists := cn.h.GetKV(cn.ns, key)
		if (nx && exists) || (xx && !exists) {
			return false, nil
		}
	}
	if err := cn.upsertLocked(cn.ns, key, val, hash); err != nil {
		return false, err
	}
	if cn.log != nil {
		seq, err := cn.log.LogKVInsert(cn.ns, key, val)
		if err != nil {
			return false, err
		}
		cn.trackSeq(seq)
	}
	switch {
	case atMs > 0:
		cn.idx.ExpireAt(cn.ns, key, hash, atMs)
		if cn.log != nil {
			seq, err := cn.log.LogKVExpire(cn.ns, key, atMs)
			if err != nil {
				return false, err
			}
			cn.trackSeq(seq)
		}
	case keep:
		// The in-memory deadline survives untouched, but the insert
		// record clears it on replay — re-log it.
		if at, ok := cn.idx.Deadline(cn.ns, key, hash); ok && cn.log != nil {
			seq, err := cn.log.LogKVExpire(cn.ns, key, at)
			if err != nil {
				return false, err
			}
			cn.trackSeq(seq)
		}
	default:
		cn.idx.Remove(cn.ns, key, hash)
	}
	return true, nil
}

func (cn *conn) cmdSetNX(args [][]byte) {
	cn.barrier()
	if len(args) != 3 {
		cn.wrongArgs("setnx")
		return
	}
	key, val := args[1], args[2]
	if err := cn.tbl.CheckKV(cn.ns, key, val, true); err != nil {
		cn.writeKVErr(err)
		return
	}
	set, err := cn.setLocked(key, val, 0, true, false, false)
	if err != nil {
		cn.writeKVErr(err)
		return
	}
	if set {
		cn.writeInt(1)
	} else {
		cn.writeInt(0)
	}
}

func (cn *conn) cmdMSet(args [][]byte) {
	cn.barrier()
	if len(args) < 3 || (len(args)-1)%2 != 0 {
		cn.wrongArgs("mset")
		return
	}
	// Validate every pair before applying any: a late rejection must not
	// leave a half-applied MSET.
	for i := 1; i < len(args); i += 2 {
		if err := cn.tbl.CheckKV(cn.ns, args[i], args[i+1], true); err != nil {
			cn.writeKVErr(err)
			return
		}
	}
	for i := 1; i < len(args); i += 2 {
		if _, err := cn.setLocked(args[i], args[i+1], 0, false, false, false); err != nil {
			cn.writeKVErr(err)
			return
		}
	}
	cn.writeSimple("OK")
}

func (cn *conn) cmdDel(args [][]byte) {
	cn.barrier()
	if len(args) < 2 {
		cn.wrongArgs("del")
		return
	}
	var n int64
	for _, key := range args[1:] {
		if cn.tbl.CheckKV(cn.ns, key, nil, false) != nil {
			continue
		}
		hash := cn.tbl.HashOfKV(cn.ns, key)
		mu := cn.idx.Lock(hash)
		mu.Lock()
		if !cn.lazyExpireLocked(cn.ns, key, hash) && cn.h.DeleteKVHashed(cn.ns, key, hash) {
			n++
			cn.idx.Remove(cn.ns, key, hash)
			if cn.log != nil {
				seq, err := cn.log.LogKVDelete(cn.ns, key)
				if err != nil {
					mu.Unlock()
					cn.writeKVErr(err)
					return
				}
				cn.trackSeq(seq)
			}
		}
		mu.Unlock()
	}
	cn.writeInt(n)
}

func (cn *conn) cmdIncr(args [][]byte, name string, sign int64, hasArg bool) {
	cn.barrier()
	want := 2
	if hasArg {
		want = 3
	}
	if len(args) != want {
		cn.wrongArgs(name)
		return
	}
	delta := sign
	if hasArg {
		n, ok := parseInt(args[2])
		if !ok {
			cn.writeError("ERR value is not an integer or out of range")
			return
		}
		delta = sign * n
	}
	key := args[1]
	if err := cn.tbl.CheckKV(cn.ns, key, nil, true); err != nil {
		cn.writeKVErr(err)
		return
	}
	hash := cn.tbl.HashOfKV(cn.ns, key)
	mu := cn.idx.Lock(hash)
	mu.Lock()
	cn.lazyExpireLocked(cn.ns, key, hash)
	var cur int64
	if v, ok := cn.h.GetKV(cn.ns, key); ok {
		c, ok2 := parseInt(v)
		if !ok2 {
			mu.Unlock()
			cn.writeError("ERR value is not an integer or out of range")
			return
		}
		cur = c
	}
	n := cur + delta
	if (delta > 0 && n < cur) || (delta < 0 && n > cur) {
		mu.Unlock()
		cn.writeError("ERR increment or decrement would overflow")
		return
	}
	var vbuf [24]byte
	val := strconv.AppendInt(vbuf[:0], n, 10)
	if err := cn.upsertLocked(cn.ns, key, val, hash); err != nil {
		mu.Unlock()
		cn.writeKVErr(err)
		return
	}
	if cn.log != nil {
		seq, err := cn.log.LogKVInsert(cn.ns, key, val)
		if err == nil {
			cn.trackSeq(seq)
			// INCR preserves the TTL; the insert record clears it on
			// replay, so a live deadline must be re-asserted in the log.
			if at, ok := cn.idx.Deadline(cn.ns, key, hash); ok {
				seq, err = cn.log.LogKVExpire(cn.ns, key, at)
				if err == nil {
					cn.trackSeq(seq)
				}
			}
		}
		if err != nil {
			mu.Unlock()
			cn.writeKVErr(err)
			return
		}
	}
	mu.Unlock()
	cn.writeInt(n)
}

// ---------------------------------------------------------------------------
// TTL commands
// ---------------------------------------------------------------------------

func (cn *conn) cmdExpire(args [][]byte, name string, unitMs int64) {
	cn.barrier()
	if len(args) != 3 {
		cn.wrongArgs(name)
		return
	}
	n, ok := parseInt(args[2])
	if !ok {
		cn.writeError("ERR value is not an integer or out of range")
		return
	}
	key := args[1]
	if cn.tbl.CheckKV(cn.ns, key, nil, false) != nil {
		cn.writeInt(0)
		return
	}
	hash := cn.tbl.HashOfKV(cn.ns, key)
	mu := cn.idx.Lock(hash)
	mu.Lock()
	if cn.lazyExpireLocked(cn.ns, key, hash) {
		mu.Unlock()
		cn.writeInt(0)
		return
	}
	if _, ok := cn.h.GetKV(cn.ns, key); !ok {
		mu.Unlock()
		cn.writeInt(0)
		return
	}
	now := cn.idx.Now()
	at := now + n*unitMs
	var seq uint64
	var err error
	if at <= now {
		// A deadline in the past deletes immediately, like Redis; the
		// deletion is durable (a real delete record), not a lazy one.
		cn.h.DeleteKVHashed(cn.ns, key, hash)
		cn.idx.Remove(cn.ns, key, hash)
		if cn.log != nil {
			seq, err = cn.log.LogKVDelete(cn.ns, key)
		}
	} else {
		cn.idx.ExpireAt(cn.ns, key, hash, at)
		if cn.log != nil {
			seq, err = cn.log.LogKVExpire(cn.ns, key, at)
		}
	}
	mu.Unlock()
	if err != nil {
		cn.writeKVErr(err)
		return
	}
	cn.trackSeq(seq)
	cn.writeInt(1)
}

func (cn *conn) cmdTTL(args [][]byte, name string, inMs bool) {
	cn.barrier()
	if len(args) != 2 {
		cn.wrongArgs(name)
		return
	}
	key := args[1]
	if cn.tbl.CheckKV(cn.ns, key, nil, false) != nil {
		cn.writeInt(-2)
		return
	}
	hash := cn.tbl.HashOfKV(cn.ns, key)
	mu := cn.idx.Lock(hash)
	mu.Lock()
	defer mu.Unlock()
	if cn.lazyExpireLocked(cn.ns, key, hash) {
		cn.writeInt(-2)
		return
	}
	if _, ok := cn.h.GetKV(cn.ns, key); !ok {
		cn.writeInt(-2)
		return
	}
	at, ok := cn.idx.Deadline(cn.ns, key, hash)
	if !ok {
		cn.writeInt(-1)
		return
	}
	rem := at - cn.idx.Now()
	if inMs {
		cn.writeInt(rem)
	} else {
		cn.writeInt((rem + 999) / 1000)
	}
}

func (cn *conn) cmdPersist(args [][]byte) {
	cn.barrier()
	if len(args) != 2 {
		cn.wrongArgs("persist")
		return
	}
	key := args[1]
	if cn.tbl.CheckKV(cn.ns, key, nil, false) != nil {
		cn.writeInt(0)
		return
	}
	hash := cn.tbl.HashOfKV(cn.ns, key)
	mu := cn.idx.Lock(hash)
	mu.Lock()
	if cn.lazyExpireLocked(cn.ns, key, hash) || !cn.idx.Remove(cn.ns, key, hash) {
		mu.Unlock()
		cn.writeInt(0)
		return
	}
	var seq uint64
	var err error
	if cn.log != nil {
		seq, err = cn.log.LogKVExpire(cn.ns, key, 0)
	}
	mu.Unlock()
	if err != nil {
		cn.writeKVErr(err)
		return
	}
	cn.trackSeq(seq)
	cn.writeInt(1)
}

// ---------------------------------------------------------------------------
// Connection commands and handshake stubs
// ---------------------------------------------------------------------------

var selectProbe = []byte{'p'}

func (cn *conn) cmdSelect(args [][]byte) {
	cn.barrier()
	if len(args) != 2 {
		cn.wrongArgs("select")
		return
	}
	n, ok := parseInt(args[1])
	if !ok || n < 0 || n > core.MaxNamespace {
		cn.writeError("ERR DB index is out of range")
		return
	}
	// DB 0 is namespace 0, always valid; others need a Namespaces table.
	if n > 0 {
		if err := cn.tbl.CheckKV(uint16(n), selectProbe, nil, false); err != nil {
			cn.writeError("ERR DB index is out of range")
			return
		}
	}
	cn.ns = uint16(n)
	cn.writeSimple("OK")
}

func (cn *conn) cmdConfig(args [][]byte) {
	cn.barrier()
	if len(args) < 2 {
		cn.wrongArgs("config")
		return
	}
	var sbuf [16]byte
	switch string(upperTo(sbuf[:0], args[1])) {
	case "GET":
		// Empty result: benchmarks probe save/appendonly and accept none.
		cn.writeArrayHeader(0)
	case "SET", "RESETSTAT":
		cn.writeSimple("OK")
	default:
		cn.writeError("ERR unknown CONFIG subcommand")
	}
}

func (cn *conn) cmdInfo(args [][]byte) {
	cn.barrier()
	durable := "0"
	if cn.log != nil {
		durable = "1"
	}
	info := "# Server\r\nredis_version:7.0.0\r\ndlht:1\r\n" +
		"# Replication\r\nrole:master\r\n" +
		"# Keyspace\r\ndurable:" + durable + "\r\n"
	cn.writeBulk([]byte(info))
}
