// Package resp is the RESP2 front-end: a bounded, allocation-averse
// reader/writer for the Redis serialization protocol and a command layer
// serving an Allocator-mode DLHT table, so redis-cli, redis-benchmark and
// every Redis client library can drive the store unmodified.
//
// The wire surface is RESP2: commands arrive as arrays of bulk strings
// (*N, then N $len-framed arguments) or as inline space-separated lines;
// replies are simple strings (+), errors (-), integers (:), bulk strings
// ($) and arrays (*). Sizes are bounded to the existing wire limits — a
// key at most 64 KiB, a bulk argument at most 16 MiB (the v2 protocol's
// MaxKVValue), an array at most MaxArgs arguments — and a frame
// announcing more is a protocol error, never an allocation.
package resp

import (
	"errors"
	"io"
	"strconv"
)

//dlht:hotpath

// Protocol bounds. MaxBulk matches the v2 protocol's 16 MiB value cap;
// MaxKeyLen the v2 key cap; MaxArgs bounds one command's argument count
// (an MSET of ~32k pairs); MaxInline bounds an inline command line.
const (
	MaxBulk   = 16 << 20
	MaxKeyLen = 64<<10 - 1
	MaxArgs   = 1 << 16
	MaxInline = 64 << 10
)

// ErrProtocol reports bytes that can never parse as RESP2. The connection
// is answered with an -ERR and closed: byte alignment is no longer
// trusted, exactly like Redis.
var ErrProtocol = errors.New("resp: protocol error")

// protoError wraps ErrProtocol with detail without fmt (these are error
// paths of a hot file; fmt would pull boxing and reflection into it).
// errors.Is(err, ErrProtocol) matches, like the fmt.Errorf("%w") it
// replaces.
type protoError struct{ detail string }

func (e *protoError) Error() string { return ErrProtocol.Error() + ": " + e.detail }
func (e *protoError) Unwrap() error { return ErrProtocol }

func protoErrorf(detail string) error { return &protoError{detail: detail} }

// Reader decodes RESP2 commands from a stream through its own buffer, so
// it controls exactly when a read may block: OnFill, if set, runs before
// every potentially-blocking fill — the serve loop's hook to drain its
// pipeline and flush pending replies before waiting on the peer.
type Reader struct {
	src    io.Reader
	buf    []byte
	r, w   int
	OnFill func()
}

// NewReader wraps src with a read buffer of the given size (minimum 4 KiB).
func NewReader(src io.Reader, size int) *Reader {
	if size < 4<<10 {
		size = 4 << 10
	}
	return &Reader{src: src, buf: make([]byte, size)}
}

// Buffered returns how many decoded-but-unconsumed bytes are buffered.
func (r *Reader) Buffered() int { return r.w - r.r }

// fill reads more bytes, compacting first. Calls OnFill before blocking.
func (r *Reader) fill() error {
	if r.r > 0 {
		copy(r.buf, r.buf[r.r:r.w])
		r.w -= r.r
		r.r = 0
	}
	if r.w == len(r.buf) {
		// A line longer than the whole buffer (huge inline command or
		// absurd length digits) can never parse.
		return protoErrorf("line exceeds " + strconv.Itoa(len(r.buf)) + " bytes")
	}
	if r.OnFill != nil {
		r.OnFill()
	}
	n, err := r.src.Read(r.buf[r.w:])
	r.w += n
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// readLine returns the next CRLF- (or bare LF-) terminated line without
// its terminator. The slice aliases the read buffer and is valid until
// the next Reader call.
func (r *Reader) readLine(max int) ([]byte, error) {
	for {
		for i := r.r; i < r.w; i++ {
			if r.buf[i] == '\n' {
				line := r.buf[r.r:i]
				r.r = i + 1
				if n := len(line); n > 0 && line[n-1] == '\r' {
					line = line[:n-1]
				}
				if len(line) > max {
					return nil, protoErrorf("line of " + strconv.Itoa(len(line)) + " bytes exceeds " + strconv.Itoa(max))
				}
				return line, nil
			}
		}
		if r.w-r.r > max {
			return nil, protoErrorf("unterminated line exceeds " + strconv.Itoa(max) + " bytes")
		}
		if err := r.fill(); err != nil {
			return nil, err
		}
	}
}

// readFull copies n payload bytes into dst, then consumes the trailing
// CRLF.
func (r *Reader) readFull(dst []byte) error {
	n := copy(dst, r.buf[r.r:r.w])
	r.r += n
	for n < len(dst) {
		if err := r.fill(); err != nil {
			return err
		}
		c := copy(dst[n:], r.buf[r.r:r.w])
		r.r += c
		n += c
	}
	// Trailing terminator: strict CRLF, or LF for sloppy peers.
	b, err := r.readByte()
	if err != nil {
		return err
	}
	if b == '\r' {
		if b, err = r.readByte(); err != nil {
			return err
		}
	}
	if b != '\n' {
		return protoErrorf("bulk string not CRLF-terminated")
	}
	return nil
}

func (r *Reader) readByte() (byte, error) {
	for r.r == r.w {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	b := r.buf[r.r]
	r.r++
	return b, nil
}

// parseInt parses a decimal integer (with optional sign) strictly; RESP
// length headers and INCR arguments share it.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	switch b[0] {
	case '-':
		neg, i = true, 1
	case '+':
		i = 1
	}
	if i == len(b) || len(b)-i > 19 {
		return 0, false
	}
	var n int64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, false
		}
		nn := n*10 + int64(d)
		if nn < n {
			return 0, false
		}
		n = nn
	}
	if neg {
		n = -n
	}
	return n, true
}

// Command is one decoded client command. Args alias Raw, which is reused
// across ReadCommand calls — a caller keeping an argument beyond the next
// read must copy it.
type Command struct {
	Args [][]byte
	Raw  []byte
}

// ReadCommand decodes the next command — a *N array of bulk strings, or
// an inline space-separated line — into c. It never panics on hostile
// input: anything unparseable is ErrProtocol (close the connection),
// anything else an I/O error. A command with zero arguments (empty inline
// line) returns with c.Args empty; callers skip it, like Redis.
func (r *Reader) ReadCommand(c *Command) error {
	c.Args = c.Args[:0]
	c.Raw = c.Raw[:0]
	line, err := r.readLine(MaxInline)
	if err != nil {
		return err
	}
	if len(line) == 0 {
		return nil
	}
	if line[0] != '*' {
		// Inline command: split on spaces and tabs.
		c.Raw = append(c.Raw, line...)
		start := -1
		for i := 0; i <= len(c.Raw); i++ {
			if i < len(c.Raw) && c.Raw[i] != ' ' && c.Raw[i] != '\t' {
				if start < 0 {
					start = i
				}
				continue
			}
			if start >= 0 {
				c.Args = append(c.Args, c.Raw[start:i])
				start = -1
			}
		}
		return nil
	}
	n, ok := parseInt(line[1:])
	if !ok || n < 0 || n > MaxArgs {
		return protoErrorf("invalid multibulk length")
	}
	offs := make([]int, 0, 8)
	for i := int64(0); i < n; i++ {
		hdr, err := r.readLine(64)
		if err != nil {
			return err
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return protoErrorf("expected bulk string")
		}
		blen, ok := parseInt(hdr[1:])
		if !ok || blen < 0 || blen > MaxBulk {
			return protoErrorf("invalid bulk length")
		}
		off := len(c.Raw)
		c.Raw = append(c.Raw, make([]byte, blen)...)
		if err := r.readFull(c.Raw[off:]); err != nil {
			return err
		}
		offs = append(offs, off)
	}
	// Args are sliced only after Raw stops growing: append may have
	// reallocated the backing array between bulks.
	for i, off := range offs {
		end := len(c.Raw)
		if i+1 < len(offs) {
			end = offs[i+1]
		}
		c.Args = append(c.Args, c.Raw[off:end])
	}
	return nil
}
