package resp

import (
	"bufio"
	"errors"
	"net"
	"strconv"
	"time"

	core "repro/internal/core"
	"repro/internal/expiry"
)

// WAL is the group-commit surface a durable table's redo log exposes
// (satisfied by *wal.Log; a local interface keeps this package free of a
// wal dependency, like exec.WAL). Mutations append records and track the
// highest sequence their buffered replies depend on; no reply byte
// reaches the socket before SyncWait covers it.
type WAL interface {
	LogKVInsert(ns uint16, key, val []byte) (uint64, error)
	LogKVDelete(ns uint16, key []byte) (uint64, error)
	LogKVExpire(ns uint16, key []byte, at int64) (uint64, error)
	SyncWait(seq uint64) error
}

// ServeOpts wires one RESP connection to its table.
type ServeOpts struct {
	// Table and Handle: the Allocator-mode table and this connection's
	// own handle (the one-handle-per-goroutine contract; the caller
	// acquires and releases it).
	Table  *core.Table
	Handle *core.Handle
	// Expiry is the table's TTL sidecar, shared with the background
	// sweeper (and, for durable tables, with snapshot/replay). Nil
	// disables TTL commands.
	Expiry *expiry.Index
	// Log is the durable table's redo log; nil for RAM tables.
	Log WAL
	// ReadBuffer/WriteBuffer size the connection buffers (default 64 KiB).
	ReadBuffer, WriteBuffer int
	// IdleTimeout mirrors server.Options.IdleTimeout.
	IdleTimeout time.Duration
}

// arenaRetain bounds the in-flight GET key arena a connection keeps
// between bursts; kvEpochEvery is the epoch-refresh cadence (matches the
// v2 serve loop).
const (
	arenaRetain  = 1 << 20
	kvEpochEvery = 1 << 10
)

// conn is one RESP connection's state: the command reader, the reply
// writer, and the streaming lookup pipeline whose completions write GET
// replies in enqueue order.
type conn struct {
	c   net.Conn
	o   ServeOpts
	r   *Reader
	bw  *bufio.Writer
	pl  *core.KVPipeline
	tbl *core.Table
	h   *core.Handle
	idx *expiry.Index
	log WAL

	ns      uint16 // SELECTed namespace
	closed  bool   // QUIT; packed beside ns, the struct's only sub-word fields
	needSeq uint64 // highest log sequence buffered replies depend on
	wErr    error
	flushAt int
	kvOps   int
	arena   []byte // keys of in-flight GETs; reset when the pipeline drains
}

// Serve runs the RESP2 command loop on c until the peer disconnects, a
// protocol error desyncs the stream, or QUIT. The handle stays owned by
// the caller.
func Serve(c net.Conn, o ServeOpts) {
	if o.ReadBuffer <= 0 {
		o.ReadBuffer = 64 << 10
	}
	if o.WriteBuffer <= 0 {
		o.WriteBuffer = 64 << 10
	}
	cn := &conn{
		c: c, o: o, tbl: o.Table, h: o.Handle, idx: o.Expiry, log: o.Log,
		r:  NewReader(c, o.ReadBuffer),
		bw: bufio.NewWriterSize(c, o.WriteBuffer),
	}
	cn.flushAt = o.WriteBuffer / 2
	if cn.flushAt < 64 {
		cn.flushAt = 64
	}
	if cn.idx == nil {
		// TTL state must be shared by every connection serving the same
		// table (the server passes one index per table); a private index
		// is only for single-connection embedding and tests.
		cn.idx = expiry.New(nil)
	}
	if cn.tbl.Mode() != core.Allocator {
		cn.writeError("ERR table is not in kv (Allocator) mode; RESP requires a kv table")
		cn.flush()
		return
	}
	cn.pl = cn.h.KVPipeline(core.KVPipelineOpts{OnComplete: func(g *core.KVGet) {
		if cn.wErr != nil {
			return
		}
		if g.OK {
			cn.writeBulk(g.Value)
		} else {
			cn.writeNull()
		}
	}})
	defer cn.pl.Close()
	// Drain-before-blocking: whenever the reader is about to wait on the
	// peer, complete the in-flight lookups and push their replies (after
	// the covering group commit) — the peer may be waiting for them.
	cn.r.OnFill = func() {
		cn.barrier()
		cn.flush()
	}

	var cmd Command
	for !cn.closed && cn.wErr == nil {
		cn.armIdle()
		if err := cn.r.ReadCommand(&cmd); err != nil {
			if errors.Is(err, ErrProtocol) {
				// Pending pipelined GET replies precede the error: the
				// stream up to the bad byte was valid and was dispatched.
				cn.barrier()
				cn.writeError("ERR Protocol error: " + err.Error())
			}
			break
		}
		if len(cmd.Args) == 0 {
			continue
		}
		cn.dispatch(&cmd)
		// Epoch cadence: with no value views in flight, let blocks
		// deleted by other connections (and the sweeper) reclaim.
		if cn.kvOps++; cn.kvOps&(kvEpochEvery-1) == 0 && cn.pl.InFlight() == 0 {
			cn.h.AdvanceEpoch()
		}
	}
	cn.barrier()
	cn.flush()
}

func (cn *conn) armIdle() {
	if cn.o.IdleTimeout > 0 {
		cn.c.SetReadDeadline(time.Now().Add(cn.o.IdleTimeout))
	}
}

func (cn *conn) armWrite() {
	if cn.o.IdleTimeout > 0 {
		cn.c.SetWriteDeadline(time.Now().Add(cn.o.IdleTimeout))
	}
}

// barrier completes every in-flight lookup (their replies are written by
// OnComplete, preserving order) and recycles the key arena. Every command
// that writes a reply inline — anything but GET/MGET enqueues — runs
// behind it.
func (cn *conn) barrier() {
	if cn.pl.InFlight() > 0 {
		cn.pl.Flush()
	}
	if len(cn.arena) > 0 && cn.pl.InFlight() == 0 {
		if cap(cn.arena) > arenaRetain {
			cn.arena = nil
		} else {
			cn.arena = cn.arena[:0]
		}
	}
}

// retain copies a key into the arena, giving it a lifetime past the
// current command — in-flight pipelined GETs hold their keys until
// completion, while Command.Raw is reused per command.
func (cn *conn) retain(b []byte) []byte {
	off := len(cn.arena)
	cn.arena = append(cn.arena, b...)
	return cn.arena[off : off+len(b) : off+len(b)]
}

// syncPending waits out the group commit covering every buffered reply
// (no-op for RAM tables). Called before any byte may reach the socket.
func (cn *conn) syncPending() {
	if cn.log == nil || cn.needSeq == 0 || cn.wErr != nil {
		return
	}
	if err := cn.log.SyncWait(cn.needSeq); err != nil {
		cn.wErr = err
		return
	}
	cn.needSeq = 0
}

// flush pushes buffered replies to the wire under the write deadline,
// after their covering group commit.
//
//dlht:ackgated
func (cn *conn) flush() {
	cn.syncPending()
	if cn.wErr != nil {
		return
	}
	cn.armWrite()
	cn.wErr = cn.bw.Flush()
}

// room syncs before a write of n bytes that would overflow the buffer's
// free space: bufio pushes older (possibly unsynced) bytes to the socket
// mid-Write, and no acknowledgement may leak ahead of its fsync.
func (cn *conn) room(n int) {
	if cn.log != nil && cn.needSeq > 0 && cn.bw.Available() < n {
		cn.syncPending()
	}
}

func (cn *conn) maybeFlush() {
	if cn.wErr == nil && cn.bw.Buffered() >= cn.flushAt {
		cn.flush()
	}
}

// ---------------------------------------------------------------------------
// Reply writers
// ---------------------------------------------------------------------------

//dlht:ackgated
func (cn *conn) writeSimple(s string) {
	if cn.wErr != nil {
		return
	}
	cn.room(len(s) + 3)
	cn.bw.WriteByte('+')
	cn.bw.WriteString(s)
	_, cn.wErr = cn.bw.WriteString("\r\n")
	cn.maybeFlush()
}

//dlht:ackgated
func (cn *conn) writeError(msg string) {
	if cn.wErr != nil {
		return
	}
	cn.room(len(msg) + 3)
	cn.bw.WriteByte('-')
	cn.bw.WriteString(msg)
	_, cn.wErr = cn.bw.WriteString("\r\n")
	cn.maybeFlush()
}

//dlht:ackgated
func (cn *conn) writeInt(n int64) {
	if cn.wErr != nil {
		return
	}
	cn.room(32)
	var a [24]byte
	b := append(a[:0], ':')
	b = strconv.AppendInt(b, n, 10)
	b = append(b, '\r', '\n')
	_, cn.wErr = cn.bw.Write(b)
	cn.maybeFlush()
}

//dlht:ackgated
func (cn *conn) writeBulk(v []byte) {
	if cn.wErr != nil {
		return
	}
	cn.room(len(v) + 32)
	var a [24]byte
	b := append(a[:0], '$')
	b = strconv.AppendInt(b, int64(len(v)), 10)
	b = append(b, '\r', '\n')
	if _, cn.wErr = cn.bw.Write(b); cn.wErr != nil {
		return
	}
	if _, cn.wErr = cn.bw.Write(v); cn.wErr != nil {
		return
	}
	_, cn.wErr = cn.bw.WriteString("\r\n")
	cn.maybeFlush()
}

//dlht:ackgated
func (cn *conn) writeNull() {
	if cn.wErr != nil {
		return
	}
	cn.room(8)
	_, cn.wErr = cn.bw.WriteString("$-1\r\n")
	cn.maybeFlush()
}

//dlht:ackgated
func (cn *conn) writeArrayHeader(n int) {
	if cn.wErr != nil {
		return
	}
	cn.room(32)
	var a [24]byte
	b := append(a[:0], '*')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '\r', '\n')
	_, cn.wErr = cn.bw.Write(b)
	cn.maybeFlush()
}
