package dlht_test

import (
	"fmt"

	dlht "repro"
)

// The core lifecycle: Insert, Get, Put, Delete.
func Example() {
	table := dlht.MustNew(dlht.Config{Resizable: true})
	h := table.MustHandle()

	h.Insert(42, 1000)
	v, _ := h.Get(42)
	fmt.Println("get:", v)

	old, _ := h.Put(42, 2000)
	fmt.Println("put replaced:", old)

	gone, _ := h.Delete(42)
	fmt.Println("delete returned:", gone)
	// Output:
	// get: 1000
	// put replaced: 1000
	// delete returned: 2000
}

// Batches prefetch each request's bin a bounded window ahead of executing
// it (§3.3, Config.PrefetchWindow) and execute strictly in order.
func ExampleHandle_Exec() {
	h := dlht.MustNew(dlht.Config{}).MustHandle()
	ops := []dlht.Op{
		{Kind: dlht.OpInsert, Key: 7, Value: 70},
		{Kind: dlht.OpGet, Key: 7},
		{Kind: dlht.OpDelete, Key: 7},
		{Kind: dlht.OpGet, Key: 7},
	}
	h.Exec(ops, false)
	fmt.Println(ops[1].Result, ops[1].OK)
	fmt.Println(ops[3].Result, ops[3].OK)
	// Output:
	// 70 true
	// 0 false
}

// The streaming Pipeline issues requests one at a time; completions fire
// in order through a callback once each request falls a full prefetch
// window behind the newest enqueue. Flush completes the in-flight tail.
func ExampleHandle_Pipeline() {
	h := dlht.MustNew(dlht.Config{}).MustHandle()
	p := h.Pipeline(dlht.PipelineOpts{Window: 2, OnComplete: func(op *dlht.Op) {
		if op.Kind == dlht.OpGet {
			fmt.Println("get:", op.Result, op.OK)
		}
	}})
	p.Insert(7, 70)
	p.Get(7)
	p.Delete(7)
	p.Get(7)
	p.Flush()
	// Output:
	// get: 70 true
	// get: 0 false
}

// Shadow inserts lock a key for a transaction: hidden from readers until
// committed, conflicting with other inserts (§3.2.2).
func ExampleHandle_InsertShadow() {
	h := dlht.MustNew(dlht.Config{}).MustHandle()
	h.InsertShadow(5, 50)

	_, visible := h.Get(5)
	fmt.Println("visible before commit:", visible)

	h.CommitShadow(5, true)
	v, _ := h.Get(5)
	fmt.Println("after commit:", v)
	// Output:
	// visible before commit: false
	// after commit: 50
}

// Allocator mode stores variable-size pairs out of line and returns
// mutable views — the pointer API of §3.2.1.
func ExampleHandle_GetKV() {
	table := dlht.MustNew(dlht.Config{
		Mode:       dlht.Allocator,
		VariableKV: true,
	})
	h := table.MustHandle()

	h.InsertKV(0, []byte("greeting"), []byte("hello, dlht"))
	v, _ := h.GetKV(0, []byte("greeting"))
	fmt.Printf("%s\n", v)

	// Mutate in place through the view.
	h.UpdateKV(0, []byte("greeting"), func(val []byte) {
		copy(val, "HELLO")
	})
	v, _ = h.GetKV(0, []byte("greeting"))
	fmt.Printf("%s\n", v)
	// Output:
	// hello, dlht
	// HELLO, dlht
}

// HashSet mode plus shadow ops make a record lock manager (§5.3.3).
func ExampleHandle_Contains() {
	locks := dlht.MustNew(dlht.Config{Mode: dlht.HashSet}).MustHandle()

	_, err := locks.Insert(99, 0) // lock record 99
	fmt.Println("locked:", err == nil)
	_, err = locks.Insert(99, 0) // second locker fails
	fmt.Println("relock fails:", err != nil)
	locks.Delete(99) // unlock
	fmt.Println("still held:", locks.Contains(99))
	// Output:
	// locked: true
	// relock fails: true
	// still held: false
}
