#!/bin/sh
# crash_smoke.sh — kill -9 crash-recovery smoke for the durable backend.
#
# Launches a dlht-server whose default table is backed by a group-commit
# WAL (-durable), drives it with dlht-crash's pipelined writer, kill -9s
# the server mid-burst, restarts it on the same directory, and verifies
# the recovered table against the writer's client-side oracle:
#
#	acked ≤ recovered ≤ issued   (per key)
#
# — no acknowledged write lost, no phantom writes. Appends one JSON line
# to BENCH_ci.json:
#
#	{"commit":"...","date":"...","go":"...","crash_smoke":
#	  {"keys":512,"acked_rounds":1234,"recovered_rounds":1250}}
#
# Usage: scripts/crash_smoke.sh [output-file]
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_ci.json}"
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
gover=$(go env GOVERSION)

bindir=$(mktemp -d)
waldir="$bindir/wal"
oracle="$bindir/oracle.json"
writelog="$bindir/write.log"
verifylog="$bindir/verify.log"
addr=127.0.0.1:14151

go build -o "$bindir/dlht-server" ./cmd/dlht-server
go build -o "$bindir/dlht-crash" ./cmd/dlht-crash

"$bindir/dlht-server" -addr "$addr" -bins 4096 -durable "$waldir" >"$bindir/s1.log" 2>&1 &
SRV=$!
cleanup() {
	kill -9 "$SRV" 2>/dev/null || true
	rm -rf "$bindir"
}
trap cleanup EXIT
sleep 1

# Writer in the background; its oracle dump happens when the transport
# dies under it. -seconds bounds the run so a missed kill cannot hang CI.
"$bindir/dlht-crash" -mode write -addr "tcp://$addr" -oracle "$oracle" \
	-keys 512 -window 64 -seconds 30 >"$writelog" 2>&1 &
WRITER=$!

# Let the burst build real in-flight state, then pull the plug.
sleep 2
kill -9 "$SRV"
wait "$WRITER" || {
	status=$?
	cat "$writelog"
	echo "crash writer failed (exit $status)" >&2
	exit "$status"
}
cat "$writelog"
[ -s "$oracle" ] || { echo "writer produced no oracle" >&2; exit 1; }
if grep -q '"clean":true' "$oracle"; then
	echo "writer finished before the kill — no crash was exercised" >&2
	exit 1
fi

# Restart on the same directory; recovery replays the log.
"$bindir/dlht-server" -addr "$addr" -bins 4096 -durable "$waldir" >"$bindir/s2.log" 2>&1 &
SRV=$!
sleep 1
grep 'recovered' "$bindir/s2.log" || true

# Output to a file then cat — a pipe into tee would replace the verifier's
# exit status with tee's under POSIX sh, and that status is the gate.
"$bindir/dlht-crash" -mode verify -addr "tcp://$addr" -oracle "$oracle" >"$verifylog" 2>&1 || {
	status=$?
	cat "$verifylog"
	cat "$bindir/s2.log"
	echo "crash verify failed (exit $status); not appending to $out" >&2
	exit "$status"
}
cat "$verifylog"

# "verify OK: 512 keys, acked rounds 1234, recovered rounds 1250 (...)"
keys=$(awk -F'[ ,]+' '/^.*verify OK:/ {for (i=1;i<NF;i++) if ($(i+1)=="keys") print $i}' "$verifylog")
acked=$(awk '/verify OK:/ {for (i=1;i<NF;i++) if ($i=="acked" && $(i+1)=="rounds") {gsub(",","",$(i+2)); print $(i+2)}}' "$verifylog")
recovered=$(awk '/verify OK:/ {for (i=1;i<NF;i++) if ($i=="recovered" && $(i+1)=="rounds") {gsub(",","",$(i+2)); print $(i+2)}}' "$verifylog")
[ -n "$keys" ] && [ -n "$acked" ] && [ -n "$recovered" ] || {
	echo "could not parse verify summary; not appending to $out" >&2
	exit 1
}

printf '{"commit":"%s","date":"%s","go":"%s","crash_smoke":{"keys":%s,"acked_rounds":%s,"recovered_rounds":%s}}\n' \
	"$commit" "$stamp" "$gover" "$keys" "$acked" "$recovered" >>"$out"
echo "appended crash smoke (keys=$keys acked=$acked recovered=$recovered) to $out"
