#!/bin/sh
# resp_smoke.sh — end-to-end smoke for the RESP2 front-end.
#
# Launches a dlht-server with -resp, proves drop-in Redis compatibility,
# and measures pipelined SET/GET throughput. When redis-benchmark and
# redis-cli are installed the real Redis tooling drives the server
# (redis-cli sanity incl. TTL expiry, then redis-benchmark -t set,get
# -P 16); otherwise it falls back to the internal RESP client
# (dlht-loadgen -resp), which runs the same sanity and phases, and notes
# the skip. Appends one JSON line to BENCH_ci.json:
#
#	{"commit":"...","date":"...","go":"...","resp_smoke":
#	  {"tool":"redis-benchmark","set_mreqs":0.42,"get_mreqs":0.61}}
#
# Usage: scripts/resp_smoke.sh [output-file]
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_ci.json}"
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
gover=$(go env GOVERSION)

bindir=$(mktemp -d)
benchlog="$bindir/bench.log"
host=127.0.0.1
port=16379
addr="$host:$port"

go build -o "$bindir/dlht-server" ./cmd/dlht-server
go build -o "$bindir/dlht-loadgen" ./cmd/dlht-loadgen

"$bindir/dlht-server" -addr 127.0.0.1:14161 -resp "$addr" >"$bindir/server.log" 2>&1 &
SRV=$!
cleanup() {
	kill "$SRV" 2>/dev/null || true
	rm -rf "$bindir"
}
trap cleanup EXIT
sleep 1

if command -v redis-benchmark >/dev/null 2>&1 && command -v redis-cli >/dev/null 2>&1; then
	tool=redis-benchmark
	# Sanity with the real client: round trip, then a TTL that expires.
	[ "$(redis-cli -h "$host" -p "$port" SET smoke:k v)" = "OK" ] || { echo "redis-cli SET failed" >&2; exit 1; }
	[ "$(redis-cli -h "$host" -p "$port" GET smoke:k)" = "v" ] || { echo "redis-cli GET failed" >&2; exit 1; }
	[ "$(redis-cli -h "$host" -p "$port" SET smoke:ttl v EX 1)" = "OK" ] || { echo "redis-cli SET EX failed" >&2; exit 1; }
	[ "$(redis-cli -h "$host" -p "$port" GET smoke:ttl)" = "v" ] || { echo "redis-cli GET before TTL failed" >&2; exit 1; }
	sleep 2
	[ -z "$(redis-cli -h "$host" -p "$port" GET smoke:ttl)" ] || { echo "key survived its TTL" >&2; exit 1; }
	[ "$(redis-cli -h "$host" -p "$port" TTL smoke:ttl)" = "-2" ] || { echo "TTL after expiry != -2" >&2; exit 1; }
	echo "redis-cli sanity: ok (SET/GET, TTL expiry)"

	# Output to a file then cat — a pipe into tee would replace the
	# benchmark's exit status with tee's under POSIX sh.
	redis-benchmark -h "$host" -p "$port" -t set,get -n 200000 -P 16 --csv >"$benchlog" 2>&1 || {
		status=$?
		cat "$benchlog"
		echo "redis-benchmark failed (exit $status); not appending to $out" >&2
		exit "$status"
	}
	cat "$benchlog"
	# --csv: "SET","123456.78",... — requests per second in column 2.
	set_mreqs=$(awk -F'"' '/^"SET"/ {printf "%.2f", $4/1e6}' "$benchlog")
	get_mreqs=$(awk -F'"' '/^"GET"/ {printf "%.2f", $4/1e6}' "$benchlog")
else
	tool=internal
	echo "redis-benchmark/redis-cli not installed; falling back to the internal RESP client (dlht-loadgen -resp)"
	"$bindir/dlht-loadgen" -resp "$addr" -conns 8 -pipeline 16 -ops 200000 -keys 100000 >"$benchlog" 2>&1 || {
		status=$?
		cat "$benchlog"
		cat "$bindir/server.log"
		echo "dlht-loadgen -resp failed (exit $status); not appending to $out" >&2
		exit "$status"
	}
	cat "$benchlog"
	# "resp set: 1.23 M reqs/s (...)"
	set_mreqs=$(awk '/^resp set:/ {print $3}' "$benchlog")
	get_mreqs=$(awk '/^resp get:/ {print $3}' "$benchlog")
fi

[ -n "$set_mreqs" ] && [ -n "$get_mreqs" ] || {
	echo "could not parse throughput from $benchlog; not appending to $out" >&2
	exit 1
}

printf '{"commit":"%s","date":"%s","go":"%s","resp_smoke":{"tool":"%s","set_mreqs":%s,"get_mreqs":%s}}\n' \
	"$commit" "$stamp" "$gover" "$tool" "$set_mreqs" "$get_mreqs" >>"$out"
echo "appended resp smoke (tool=$tool set=$set_mreqs get=$get_mreqs Mreq/s) to $out"
