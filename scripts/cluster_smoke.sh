#!/bin/sh
# cluster_smoke.sh — 3-shard sharded-cluster smoke for CI and local runs.
#
# Launches three dlht-server processes (shared-executor default), drives
# them with `dlht-loadgen -addrs` (the consistent-hashed Cluster Store) in
# the synchronous shape at two connection counts — 4, and the
# many-small-clients regime at 64 — plus the pipelined (-async) shape, and
# appends one JSON line per invocation to BENCH_ci.json:
#
#	{"commit":"...","date":"...","go":"...","cluster_smoke":
#	  {"shards":3,"sync_mreqs":0.05,"sync64_mreqs":0.11,"async_mreqs":0.22}}
#
# Any loadgen error (transport failure, unexpected status, missing key)
# fails the script, so this doubles as an end-to-end correctness gate for
# the protocol v2 handshake, shard routing, and per-shard completion
# ordering.
#
# It then runs the failover case: three WAL-backed shards, a replicated
# (R=2, W=1) loadgen run, kill -9 of one shard mid-run, restart from the
# same WAL directory — the loadgen must ride through the outage (error
# rate under -max-error-rate, every loaded key readable afterwards, no
# client restart) and a second JSON line records the availability:
#
#	{"commit":"...","date":"...","go":"...","failover_smoke":
#	  {"shards":3,"replicas":2,"write_quorum":1,"availability_pct":99.98,
#	   "retryable_errs":12,"mreqs":0.18}}
#
# Usage: scripts/cluster_smoke.sh [output-file]
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_ci.json}"
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
gover=$(go env GOVERSION)

bindir=$(mktemp -d)
synclog="$bindir/sync.log"
sync64log="$bindir/sync64.log"
asynclog="$bindir/async.log"

go build -o "$bindir/dlht-server" ./cmd/dlht-server
go build -o "$bindir/dlht-loadgen" ./cmd/dlht-loadgen

"$bindir/dlht-server" -addr 127.0.0.1:14141 -bins 262144 >"$bindir/s1.log" 2>&1 &
PIDS=$!
"$bindir/dlht-server" -addr 127.0.0.1:14142 -bins 262144 >"$bindir/s2.log" 2>&1 &
PIDS="$PIDS $!"
"$bindir/dlht-server" -addr 127.0.0.1:14143 -bins 262144 >"$bindir/s3.log" 2>&1 &
PIDS="$PIDS $!"
cleanup() {
	# shellcheck disable=SC2086 # PIDS is a space-separated pid list
	kill -9 $PIDS 2>/dev/null || true
	rm -rf "$bindir"
}
trap cleanup EXIT
sleep 1

addrs=127.0.0.1:14141,127.0.0.1:14142,127.0.0.1:14143

# Output goes to a file first, then cat — a pipe into tee would replace
# the loadgen's exit status with tee's under POSIX sh (no pipefail), and
# the loadgen's non-zero exit on any error is this gate's whole point.
"$bindir/dlht-loadgen" -addrs "$addrs" -conns 4 -pipeline 64 \
	-ops 200000 -keys 100000 -read-pct 50 >"$synclog" 2>&1 || {
	status=$?
	cat "$synclog"
	echo "sync cluster run failed (exit $status); not appending to $out" >&2
	exit "$status"
}
cat "$synclog"
# The many-small-clients case: 64 synchronous connections, one request in
# flight each — the regime the shared executor serves by aggregating the
# fleet into per-shard pipelines.
"$bindir/dlht-loadgen" -addrs "$addrs" -conns 64 -pipeline 1 \
	-ops 200000 -keys 100000 -read-pct 50 -skip-load >"$sync64log" 2>&1 || {
	status=$?
	cat "$sync64log"
	echo "sync conns=64 cluster run failed (exit $status); not appending to $out" >&2
	exit "$status"
}
cat "$sync64log"
"$bindir/dlht-loadgen" -addrs "$addrs" -conns 4 -pipeline 64 \
	-ops 200000 -keys 100000 -read-pct 50 -skip-load -async >"$asynclog" 2>&1 || {
	status=$?
	cat "$asynclog"
	echo "async cluster run failed (exit $status); not appending to $out" >&2
	exit "$status"
}
cat "$asynclog"

# "throughput: 12.34 M reqs/s (...)" → 12.34
sync_m=$(awk '/^throughput:/ {print $2}' "$synclog")
sync64_m=$(awk '/^throughput:/ {print $2}' "$sync64log")
async_m=$(awk '/^throughput:/ {print $2}' "$asynclog")
[ -n "$sync_m" ] && [ -n "$sync64_m" ] && [ -n "$async_m" ] || {
	echo "could not parse throughput; not appending to $out" >&2
	exit 1
}

printf '{"commit":"%s","date":"%s","go":"%s","cluster_smoke":{"shards":3,"sync_mreqs":%s,"sync64_mreqs":%s,"async_mreqs":%s}}\n' \
	"$commit" "$stamp" "$gover" "$sync_m" "$sync64_m" "$async_m" >>"$out"
echo "appended cluster smoke (sync=$sync_m M/s sync64=$sync64_m M/s async=$async_m M/s) to $out"

# ---- failover case: kill -9 one replicated durable shard mid-run ----
#
# Three fresh WAL-backed shards; the replicated async loadgen (R=2 per
# key, one ack to proceed) runs against them while the middle shard is
# kill -9'd and then restarted from its WAL directory on the same port.
# The loadgen must finish without a client restart: retryable errors are
# tolerated up to -max-error-rate, -verify then reads back every loaded
# key — an acked write surviving on the other replica (or on the
# restarted shard after WAL replay) is the zero-lost-acked-writes gate.
faillog="$bindir/failover.log"
faddrs=127.0.0.1:14144,127.0.0.1:14145,127.0.0.1:14146

"$bindir/dlht-server" -addr 127.0.0.1:14144 -bins 65536 -durable "$bindir/fwal1" >"$bindir/f1.log" 2>&1 &
PIDS="$PIDS $!"
"$bindir/dlht-server" -addr 127.0.0.1:14145 -bins 65536 -durable "$bindir/fwal2" >"$bindir/f2.log" 2>&1 &
TARGET=$!
PIDS="$PIDS $TARGET"
"$bindir/dlht-server" -addr 127.0.0.1:14146 -bins 65536 -durable "$bindir/fwal3" >"$bindir/f3.log" 2>&1 &
PIDS="$PIDS $!"
sleep 1

"$bindir/dlht-loadgen" -addrs "$faddrs" -conns 4 -pipeline 64 \
	-ops 1500000 -keys 100000 -read-pct 50 -async \
	-replicas 2 -write-quorum 1 -max-error-rate 10 -verify >"$faillog" 2>&1 &
LG=$!

# Kill the shard while the run is hot, restart it from the same WAL.
sleep 2
kill -0 "$LG" 2>/dev/null || {
	cat "$faillog"
	echo "loadgen finished before the shard kill — no failover exercised" >&2
	exit 1
}
kill -9 "$TARGET"
sleep 1
"$bindir/dlht-server" -addr 127.0.0.1:14145 -bins 65536 -durable "$bindir/fwal2" >"$bindir/f2b.log" 2>&1 &
PIDS="$PIDS $!"

wait "$LG" || {
	status=$?
	cat "$faillog"
	echo "failover run failed (exit $status); not appending to $out" >&2
	exit "$status"
}
cat "$faillog"
grep -q 'recovered' "$bindir/f2b.log" || {
	cat "$bindir/f2b.log"
	echo "restarted shard shows no WAL recovery" >&2
	exit 1
}

# "availability: 99.9876% (...)" → 99.9876
avail=$(awk '/^availability:/ {sub(/%/, "", $2); print $2}' "$faillog")
# "errors: N (retryable R, terminal T, missing M)" → R
retryable=$(awk '/^errors:/ {sub(/,/, "", $4); print $4}' "$faillog")
fail_m=$(awk '/^throughput:/ {print $2}' "$faillog")
[ -n "$avail" ] && [ -n "$retryable" ] && [ -n "$fail_m" ] || {
	echo "could not parse failover metrics; not appending to $out" >&2
	exit 1
}

printf '{"commit":"%s","date":"%s","go":"%s","failover_smoke":{"shards":3,"replicas":2,"write_quorum":1,"availability_pct":%s,"retryable_errs":%s,"mreqs":%s}}\n' \
	"$commit" "$stamp" "$gover" "$avail" "$retryable" "$fail_m" >>"$out"
echo "appended failover smoke (availability=$avail% retryable=$retryable mreqs=$fail_m) to $out"
