#!/bin/sh
# reshard_smoke.sh — online-resharding smoke for CI and local runs.
#
# Launches three WAL-backed dlht-server shards (with the per-key version
# index the migration's last-write-wins arbitration uses) plus one spare,
# then drives them with a replicated async loadgen whose -churn flag adds
# the spare to the ring MID-RUN and cycles it back out — two full online
# reshards under live traffic. While the handoff window is open, one of
# the SOURCE shards is kill -9'd and restarted from its WAL directory on
# the same port: the bulk copy must fail over to the surviving replica
# and the membership change still complete.
#
# The gates are the paper-grade claims, not vibes: the loadgen's
# availability line must clear -max-error-rate 0.1 (>= 99.9% of ops
# acked straight through two ring flips and a shard crash), -verify must
# find every acked insert readable on the final ring, and the reshard
# must actually have moved keys. One JSON line goes to BENCH_ci.json:
#
#	{"commit":"...","date":"...","go":"...","reshard_smoke":
#	  {"shards":3,"replicas":2,"write_quorum":1,"churn":1,
#	   "availability_pct":99.99,"moved_keys":40813,"mreqs":0.18}}
#
# Usage: scripts/reshard_smoke.sh [output-file]
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_ci.json}"
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
gover=$(go env GOVERSION)

bindir=$(mktemp -d)
runlog="$bindir/reshard.log"

go build -o "$bindir/dlht-server" ./cmd/dlht-server
go build -o "$bindir/dlht-loadgen" ./cmd/dlht-loadgen

# Three serving shards and one spare, all durable and version-tracking.
"$bindir/dlht-server" -addr 127.0.0.1:14151 -bins 65536 -track-versions -durable "$bindir/rwal1" >"$bindir/r1.log" 2>&1 &
PIDS=$!
"$bindir/dlht-server" -addr 127.0.0.1:14152 -bins 65536 -track-versions -durable "$bindir/rwal2" >"$bindir/r2.log" 2>&1 &
TARGET=$!
PIDS="$PIDS $TARGET"
"$bindir/dlht-server" -addr 127.0.0.1:14153 -bins 65536 -track-versions -durable "$bindir/rwal3" >"$bindir/r3.log" 2>&1 &
PIDS="$PIDS $!"
"$bindir/dlht-server" -addr 127.0.0.1:14154 -bins 65536 -track-versions -durable "$bindir/rwal4" >"$bindir/r4.log" 2>&1 &
PIDS="$PIDS $!"
cleanup() {
	# shellcheck disable=SC2086 # PIDS is a space-separated pid list
	kill -9 $PIDS 2>/dev/null || true
	rm -rf "$bindir"
}
trap cleanup EXIT
sleep 1

addrs=127.0.0.1:14151,127.0.0.1:14152,127.0.0.1:14153
spare=127.0.0.1:14154

"$bindir/dlht-loadgen" -addrs "$addrs" -conns 4 -pipeline 64 \
	-ops 1500000 -keys 60000 -read-pct 50 -async \
	-replicas 2 -write-quorum 1 \
	-churn 1 -spares "$spare" \
	-max-error-rate 0.1 -verify >"$runlog" 2>&1 &
LG=$!

# Kill a source shard while the migration's handoff window is hot (the
# churn goroutine starts resharding as soon as the measured phase does),
# then restart it from the same WAL directory.
sleep 3
kill -0 "$LG" 2>/dev/null || {
	cat "$runlog"
	echo "loadgen finished before the shard kill — no mid-handoff crash exercised" >&2
	exit 1
}
kill -9 "$TARGET"
sleep 1
"$bindir/dlht-server" -addr 127.0.0.1:14152 -bins 65536 -track-versions -durable "$bindir/rwal2" >"$bindir/r2b.log" 2>&1 &
PIDS="$PIDS $!"

wait "$LG" || {
	status=$?
	cat "$runlog"
	echo "reshard run failed (exit $status); not appending to $out" >&2
	exit "$status"
}
cat "$runlog"
grep -q 'recovered' "$bindir/r2b.log" || {
	cat "$bindir/r2b.log"
	echo "restarted shard shows no WAL recovery" >&2
	exit 1
}
grep -q '^churn: 1 membership changes' "$runlog" || {
	echo "churn loop did not complete its membership change" >&2
	exit 1
}

# "availability: 99.9876% (...)" → 99.9876
avail=$(awk '/^availability:/ {sub(/%/, "", $2); print $2}' "$runlog")
# "reshard: moved N keys (epoch E)" → N
moved=$(awk '/^reshard: moved/ {print $3}' "$runlog")
mreqs=$(awk '/^throughput:/ {print $2}' "$runlog")
[ -n "$avail" ] && [ -n "$moved" ] && [ -n "$mreqs" ] || {
	echo "could not parse reshard metrics; not appending to $out" >&2
	exit 1
}
[ "$moved" -gt 0 ] || {
	echo "reshard moved 0 keys — no migration happened" >&2
	exit 1
}

printf '{"commit":"%s","date":"%s","go":"%s","reshard_smoke":{"shards":3,"replicas":2,"write_quorum":1,"churn":1,"availability_pct":%s,"moved_keys":%s,"mreqs":%s}}\n' \
	"$commit" "$stamp" "$gover" "$avail" "$moved" "$mreqs" >>"$out"
echo "appended reshard smoke (availability=$avail% moved=$moved mreqs=$mreqs M/s) to $out"
