#!/bin/sh
# bench_ci.sh — benchmark smoke run for CI and local perf tracking.
#
# Runs the short-benchtime benchmark suites of the root package and
# internal/server, parses the `go test -bench` output, and appends one JSON
# line per invocation to BENCH_ci.json (JSON Lines: each line is a complete
# object with commit, timestamp and per-benchmark ns/op). CI uploads its
# run as an artifact; the in-repo file accumulates the perf trajectory
# when contributors run this locally and commit the result — in the
# spirit of hand-curated BENCHMARKS.md logs.
#
# Usage: scripts/bench_ci.sh [output-file]
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_ci.json}"
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
gover=$(go env GOVERSION)
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# -run='^$' skips all tests; -benchtime=100ms keeps this a smoke signal,
# not a rigorous measurement. Output goes to a file first so a failing
# `go test` aborts the script (a pipe into tee would mask its exit status
# under POSIX sh, which has no pipefail).
#
# The figure-level suites exclude BenchmarkExec (Go bench regexes have no
# negative lookahead), which runs separately below with the prefetch-window
# sweep restricted to the before/after pair — the old full-batch prefetch
# pass vs. the default sliding window — including the deep 4096-op batch,
# so every BENCH_ci.json line tracks the windowed-pipeline gain.
go test -bench='^Benchmark(Fig|Table|Op|Occupancy|CXL|Ablations)' \
	-benchtime=100ms -run='^$' . >"$tmp" 2>&1 || {
	status=$?
	cat "$tmp"
	echo "bench run failed (exit $status); not appending to $out" >&2
	exit "$status"
}
go test -bench='^Benchmark(Pipelined|EncodeDecode)' -benchtime=100ms -run='^$' ./internal/server >>"$tmp" 2>&1 || {
	status=$?
	cat "$tmp"
	echo "server bench run failed (exit $status); not appending to $out" >&2
	exit "$status"
}
# The sync-conns sweep is the executor's before/after record: conns
# synchronous connections (one request in flight each) against the
# goroutine-per-connection baseline and both executor routing modes. It
# runs at 200ms separately from the smoke suite above because each mode
# spins up and prepopulates its own out-of-LLC server.
go test -bench='BenchmarkServerSyncConns' -benchtime=200ms -run='^$' ./internal/server >>"$tmp" 2>&1 || {
	status=$?
	cat "$tmp"
	echo "sync-conns sweep failed (exit $status); not appending to $out" >&2
	exit "$status"
}
# The sweeps run longer than the smoke suites: they are the before/after
# record the trajectory is judged on, and 100ms points wobble ±8%. The
# Exec sweep tracks the windowed-pipeline gain over the full-batch pass;
# the Pipeline sweep (batch 4096, window 8/16/32) tracks the streaming
# API's overhead against Exec's inlined ns/op at the same window.
go test -bench='BenchmarkExec/w=(full|16)/' -benchtime=500ms -run='^$' . >>"$tmp" 2>&1 || {
	status=$?
	cat "$tmp"
	echo "window-sweep bench run failed (exit $status); not appending to $out" >&2
	exit "$status"
}
go test -bench='BenchmarkPipeline/w=(8|16|32)/' -benchtime=500ms -run='^$' . >>"$tmp" 2>&1 || {
	status=$?
	cat "$tmp"
	echo "pipeline bench run failed (exit $status); not appending to $out" >&2
	exit "$status"
}
# Durability trio: the group-committed pipelined surface vs one fsync per
# op vs the RAM pipeline on the same table shape. The group/perop ratio is
# the WAL's whole argument, so it is gated below — group commit must be at
# least 10x the per-op-fsync baseline (it lands orders of magnitude
# higher; 10x only catches a broken gate, e.g. an accidental sync per op).
go test -bench='^BenchmarkWAL' -benchtime=100ms -run='^$' ./internal/wal >>"$tmp" 2>&1 || {
	status=$?
	cat "$tmp"
	echo "wal bench run failed (exit $status); not appending to $out" >&2
	exit "$status"
}
cat "$tmp"
group_ns=$(awk '$1 ~ /^BenchmarkWAL\/group/ && $4 == "ns/op" {print $3}' "$tmp")
perop_ns=$(awk '$1 ~ /^BenchmarkWAL\/perop/ && $4 == "ns/op" {print $3}' "$tmp")
[ -n "$group_ns" ] && [ -n "$perop_ns" ] || {
	echo "wal bench missing group/perop results; not appending to $out" >&2
	exit 1
}
awk -v g="$group_ns" -v p="$perop_ns" 'BEGIN {
	ratio = p / g
	printf "wal group-commit speedup over per-op fsync: %.1fx (group %.1f ns/op, perop %.1f ns/op)\n", ratio, g, p
	exit (ratio >= 10) ? 0 : 1
}' || {
	echo "group commit under 10x the per-op fsync baseline; not appending to $out" >&2
	exit 1
}
grep -q 'BenchmarkExec/w=16/inlined/b=4096' "$tmp" || {
	echo "window sweep missing its deep-batch case; not appending to $out" >&2
	exit 1
}
grep -q 'BenchmarkPipeline/w=16/inlined/b=4096' "$tmp" || {
	echo "pipeline sweep missing its deep-batch case; not appending to $out" >&2
	exit 1
}
grep -q 'BenchmarkServerSyncConns/exec=shared/conns=64' "$tmp" || {
	echo "sync-conns sweep missing its 64-connection case; not appending to $out" >&2
	exit 1
}

awk -v commit="$commit" -v stamp="$stamp" -v gover="$gover" '
	/^Benchmark/ && NF >= 4 && $4 == "ns/op" {
		printf "%s{\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s}", sep, $1, $2, $3
		sep = ","
	}
	END {
		printf "]}\n"
	}
	BEGIN {
		printf "{\"commit\":\"%s\",\"date\":\"%s\",\"go\":\"%s\",\"results\":[", commit, stamp, gover
	}
' "$tmp" >>"$out"

echo "appended $(grep -c . "$out") total entries to $out"
