package dlht

import (
	"errors"
	"fmt"
	"net/url"
	"strings"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/wal"
)

// ErrBadSpec reports an Open spec whose scheme or shape Open does not
// understand. It wraps the detailed message, so errors.Is(err, ErrBadSpec)
// catches every malformed-spec failure regardless of which part was wrong.
var ErrBadSpec = errors.New("dlht: bad store spec")

// Durable backend types, re-exported.
type (
	// DurableStore is the concrete type behind wal: specs — an in-memory
	// table whose effective mutations are group-committed to a redo log in
	// a directory, recovered on Open. Beyond the Store surface it exposes
	// Table, Log, Snapshot and RecoverStats; reach them by type-asserting
	// an Open result or by calling OpenDurable directly.
	DurableStore = wal.Store
	// WALOptions tunes a DurableStore (segment rotation and automatic
	// snapshot thresholds); pass via WithWALOptions.
	WALOptions = wal.Options
	// RecoverStats reports what a DurableStore's recovery found: the
	// snapshot it loaded, segments and records replayed, torn bytes
	// truncated.
	RecoverStats = wal.RecoverStats

	// Status is a wire response status (protocol v1 and v2); surfaced by
	// Client's raw protocol methods. StatusErr maps one onto the error
	// sentinels above.
	Status = server.Status
)

// Wire statuses, re-exported so Client's raw surface is usable without
// importing internal packages.
const (
	StatusOK           = server.StatusOK
	StatusNotFound     = server.StatusNotFound
	StatusExists       = server.StatusExists
	StatusShadow       = server.StatusShadow
	StatusFull         = server.StatusFull
	StatusReservedKey  = server.StatusReservedKey
	StatusWrongMode    = server.StatusWrongMode
	StatusValueSize    = server.StatusValueSize
	StatusNamespace    = server.StatusNamespace
	StatusBadVersion   = server.StatusBadVersion
	StatusUnknownTable = server.StatusUnknownTable
	StatusBusy         = server.StatusBusy
	StatusBadRequest   = server.StatusBadRequest
)

// StatusErr maps a wire status onto its sentinel error: nil for the two
// non-error statuses (StatusOK and StatusNotFound — a miss is not an
// error), the matching core sentinel where one exists (ErrExists, ErrFull,
// ...), and the transport sentinels (ErrBusy, ErrUnknownTable, ...) for
// statuses that only exist on the wire. It is the one Status→error mapping
// on the public surface; every backend's errors flow through the same
// sentinels, so errors.Is-based handling is backend-independent.
func StatusErr(s Status) error { return s.Err() }

// openConfig collects what the Option funcs set.
type openConfig struct {
	cfg     Config
	client  ClientOpts
	cluster ClusterOpts
	wal     WALOptions
}

// Option configures Open. Options that do not apply to the spec's backend
// are ignored (a tcp:// spec ignores WithConfig, a mem: spec ignores
// WithClientOpts), so one option slice can serve a spec that varies at
// runtime.
type Option func(*openConfig)

// WithConfig sets the table configuration for the mem: and wal: backends
// (the zero Config is a usable Inlined table). A wal: directory must be
// reopened under the same mode configuration it was written with.
func WithConfig(cfg Config) Option {
	return func(oc *openConfig) { oc.cfg = cfg }
}

// WithClientOpts sets the connection options for the tcp:// backend
// (features, read/write deadlines). A table named in the spec path
// overrides ClientOpts.Table.
func WithClientOpts(o ClientOpts) Option {
	return func(oc *openConfig) { oc.client = o }
}

// WithClusterOpts sets the sharding options for the cluster: backend:
// table selector, virtual nodes, per-shard window, deadlines, and the
// fault-tolerance knobs — Replicas/WriteQuorum, the per-connection
// redial policy (Retry), and the failure detector (DownAfter,
// ProbeInterval, Probe). WithReplicas and WithRetry are shorthands for
// the common subset.
func WithClusterOpts(o ClusterOpts) Option {
	return func(oc *openConfig) { oc.cluster = o }
}

// WithReplicas makes the cluster: backend replicate each key to r shards
// (the ring owner plus its r-1 clockwise successors), acking writes
// after w replica acks; w = 0 means write-all. With w = r an acked write
// survives any single-shard loss and reads never miss it after
// failover; w < r keeps writes available through r-w shard failures at
// the cost of replica divergence (there is no read repair). Shorthand
// for the Replicas/WriteQuorum fields of WithClusterOpts.
func WithReplicas(r, w int) Option {
	return func(oc *openConfig) {
		oc.cluster.Replicas = r
		oc.cluster.WriteQuorum = w
	}
}

// WithRetry sets the transparent redial-and-retry policy for the tcp://
// backend's synchronous helpers and for every shard connection of the
// cluster: backend (where the zero policy already means DefaultRetry;
// pass Max < 0 to disable). Retried writes are at-least-once: a retried
// Insert whose first attempt applied but whose ack was lost reports the
// key as already present.
func WithRetry(p RetryPolicy) Option {
	return func(oc *openConfig) {
		oc.client.Retry = p
		oc.cluster.Retry = p
	}
}

// WithWALOptions sets the durability tuning for the wal: backend.
func WithWALOptions(o WALOptions) Option {
	return func(oc *openConfig) { oc.wal = o }
}

// Open opens a Store from a spec string — one entry point over every
// backend:
//
//	s, _ := dlht.Open("mem:")                         // in-process table
//	s, _ := dlht.Open("tcp://host:4040/users")        // one dlht-server, table "users"
//	s, _ := dlht.Open("cluster:a:4040,b:4040,c:4040") // consistent-hashed shards
//	s, _ := dlht.Open("wal:/var/lib/dlht/users",      // durable: group-commit WAL
//	        dlht.WithConfig(dlht.Config{Resizable: true}))
//
// A malformed or unknown spec fails with an error wrapping ErrBadSpec; a
// backend that fails to open (dial refused, unknown table, unrecoverable
// directory) returns that backend's error wrapped with the spec, so
// errors.Is sees through to the underlying sentinel (ErrUnknownTable,
// net.Error, ...). Like every Store, the result is a per-goroutine object.
//
// Dial, DialTable, NewCluster and DialCluster remain as documented aliases
// for callers that want a concrete client type or pre-opened members.
func Open(spec string, opts ...Option) (Store, error) {
	var oc openConfig
	for _, o := range opts {
		o(&oc)
	}
	switch {
	case spec == "mem:" || spec == "mem":
		t, err := New(oc.cfg)
		if err != nil {
			return nil, fmt.Errorf("dlht: open %q: %w", spec, err)
		}
		return t.Store()

	case strings.HasPrefix(spec, "tcp://"):
		u, err := url.Parse(spec)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("%w: %q (want tcp://host:port[/table])", ErrBadSpec, spec)
		}
		co := oc.client
		if tbl := strings.TrimPrefix(u.Path, "/"); tbl != "" {
			co.Table = tbl
		}
		cl, err := server.DialV2(u.Host, co)
		if err != nil {
			return nil, fmt.Errorf("dlht: open %q: %w", spec, err)
		}
		return cl, nil

	case strings.HasPrefix(spec, "cluster:"):
		rest := strings.TrimPrefix(spec, "cluster:")
		if rest == "" {
			return nil, fmt.Errorf("%w: %q (want cluster:addr,addr,...)", ErrBadSpec, spec)
		}
		c, err := cluster.Dial(strings.Split(rest, ","), oc.cluster)
		if err != nil {
			return nil, fmt.Errorf("dlht: open %q: %w", spec, err)
		}
		return c, nil

	case strings.HasPrefix(spec, "wal:"):
		dir := strings.TrimPrefix(spec, "wal:")
		if dir == "" {
			return nil, fmt.Errorf("%w: %q (want wal:/path/to/dir)", ErrBadSpec, spec)
		}
		ds, err := wal.Open(dir, oc.cfg, oc.wal)
		if err != nil {
			return nil, fmt.Errorf("dlht: open %q: %w", spec, err)
		}
		return ds, nil
	}
	return nil, fmt.Errorf("%w: %q (schemes: mem:, tcp://, cluster:, wal:)", ErrBadSpec, spec)
}

// OpenDurable opens (creating or recovering) a durable table in dir and
// returns the concrete DurableStore — Open("wal:"+dir) with access to the
// wider surface (Table, Log, Snapshot, RecoverStats) without a type
// assertion.
func OpenDurable(dir string, cfg Config, opts WALOptions) (*DurableStore, error) {
	return wal.Open(dir, cfg, opts)
}
